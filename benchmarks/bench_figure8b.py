"""Figure 8(b): dsort vs csort, 64-byte records, four distributions.

Same byte volume as Figure 8(a) (the paper holds 64 GB constant and
varies the record size), so per-node record counts are a quarter of the
16-byte run's.
"""

from conftest import save_result

from repro.bench import figure8_experiment, render_figure8


def test_figure8b_64_byte_records(once):
    results = once(figure8_experiment, 64)
    save_result("figure8b", render_figure8(results, 64))
    for dist, pair in results.items():
        dsort, csort = pair["dsort"], pair["csort"]
        assert dsort.verified and csort.verified
        ratio = dsort.total_time / csort.total_time
        assert ratio < 1.0, f"dsort must beat csort on {dist}"
        assert 0.60 <= ratio <= 0.95, (
            f"{dist}: ratio {ratio:.3f} outside the paper's band")
        assert dsort.partition_imbalance <= 1.10
