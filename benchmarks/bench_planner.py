"""repro.plan acceptance benchmarks: planned defaults vs. the tuner.

The planner's claim is that the hardware cost model predicts the tuner's
winners: applying a compiled plan — zero search evaluations, no cluster
runs — must close at least half of the gap between the hand-tuned
default and the offline tuner's best config, for both sorts.  On this
cost model it closes *all* of it (the analytic argmin is the tuned
optimum), and a plan-warm-started hill climb verifies that in no more
evaluations than a cold one.

Every result is byte-deterministic across same-seed runs; the JSON
artifacts under ``results/`` are what ``repro plan --json`` would emit,
plus the measured makespans.
"""

import json
import os

from conftest import RESULTS_DIR, save_result

from repro.bench import render_table
from repro.bench.harness import run_sort
from repro.pdm.records import RecordSchema
from repro.plan import plan_sort
from repro.tune import tune_sort

N_NODES = 4
N_PER_NODE = 4096
SEED = 0


def save_json(name: str, doc: dict) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[saved planner result to {path}]")
    return path


def plan_vs_tuner(sorter):
    schema = RecordSchema.paper_16()
    common = dict(n_nodes=N_NODES, n_per_node=N_PER_NODE, seed=SEED)
    baseline = run_sort(sorter, "uniform", schema, **common)
    plan = plan_sort(sorter, N_NODES, N_PER_NODE,
                     record_bytes=schema.record_bytes)
    planned = run_sort(sorter, "uniform", schema, plan=plan, **common)
    cold = tune_sort(sorter, **common)
    warm = tune_sort(sorter, warm_start=plan, **common)
    assert baseline.verified and planned.verified
    return {"baseline": baseline.total_time, "plan": plan,
            "planned": planned.total_time, "cold": cold, "warm": warm}


def test_planned_defaults_close_the_tuner_gap(once):
    results = once(lambda: {s: plan_vs_tuner(s)
                            for s in ("dsort", "csort")})

    rows = []
    for sorter, r in results.items():
        baseline, planned = r["baseline"], r["planned"]
        cold, warm, plan = r["cold"], r["warm"], r["plan"]
        best = cold.best_score
        gap_closure = ((baseline - planned) / (baseline - best)
                       if baseline > best else 1.0)
        save_json(f"planner_{sorter}", {
            "plan": plan.to_json(),
            "baseline_ms": baseline * 1e3,
            "planned_ms": planned * 1e3,
            "tuner_best_ms": best * 1e3,
            "gap_closure": gap_closure,
            "cold_evaluations": cold.evaluations,
            "warm_evaluations": warm.evaluations,
        })
        rows.append([sorter, baseline * 1e3, planned * 1e3, best * 1e3,
                     f"{gap_closure:.0%}", cold.evaluations,
                     warm.evaluations])

        # the tentpole acceptance criteria: planned defaults close at
        # least half the default-to-tuned gap at zero evaluations
        assert gap_closure >= 0.5, \
            f"{sorter}: plan closes only {gap_closure:.0%} of the gap"
        # and warm-starting the climb at the plan never hurts
        assert warm.best_score <= cold.best_score
        assert warm.evaluations <= cold.evaluations

    save_result(
        "planner",
        "compiled plans vs offline tuner "
        f"({N_NODES} nodes x {N_PER_NODE} records, seed {SEED}; "
        "plans cost zero evaluations)\n"
        + render_table(["sorter", "default (ms)", "planned (ms)",
                        "tuner best (ms)", "gap closed", "cold evals",
                        "warm evals"], rows))


def test_planner_output_is_byte_deterministic(once):
    def twice():
        return (plan_sort("dsort", N_NODES, N_PER_NODE).to_json(),
                plan_sort("dsort", N_NODES, N_PER_NODE).to_json(),
                plan_sort("csort", N_NODES, N_PER_NODE).to_json())

    first, second, _ = once(twice)
    a = json.dumps(first, indent=2, sort_keys=True)
    b = json.dumps(second, indent=2, sort_keys=True)
    assert a.encode() == b.encode()
