"""Section II prose: "only a small pool containing a fixed number of
buffers needs to be allocated, and the total memory consumed by buffers
fits within the physical RAM."

Sweep the pool size of a 3-stage pipeline: one buffer serializes the
stages, a handful restores full overlap, and beyond the stage count extra
buffers buy nothing — the fixed small pool really is enough.
"""

from conftest import save_result

from repro.bench import pool_size_experiment, render_table


def test_pool_size_sweep(once):
    results = once(pool_size_experiment, (1, 2, 3, 4, 8))
    rows = [[n, t] for n, t in sorted(results.items())]
    save_result("pool_size", "3-stage pipeline time vs buffer-pool size\n"
                + render_table(["nbuffers", "simulated seconds"], rows))
    # 1 buffer = fully serialized; 3 buffers = fully overlapped
    assert results[1] > 1.3 * results[3]
    # beyond the stage count, more buffers change nothing measurable
    assert results[8] == results[4]
    # monotone non-increasing over the sweep
    times = [t for _, t in sorted(results.items())]
    assert all(a >= b for a, b in zip(times, times[1:]))
