"""Section III: why csort is three passes, not four.

"The key observation is that ... the communicate, permute, and write
stages of the third pass, together with the read stage of the fourth
pass, just shift each column down by the height of half a column.  By
replacing these four stages by a single communicate stage, we can
eliminate one pass."  Measure exactly that saving, and where the programs
land relative to dsort's two passes.
"""

import pytest
from conftest import save_result

from repro.bench import render_table
from repro.bench.harness import run_sort
from repro.pdm.records import RecordSchema


def test_pass_coalescing_ladder(once):
    def experiment():
        schema = RecordSchema.paper_16()
        return {name: run_sort(name, "uniform", schema)
                for name in ("dsort", "csort", "csort4")}

    results = once(experiment)
    rows = []
    for name in ("dsort", "csort", "csort4"):
        run = results[name]
        passes = len([p for p in run.phase_times if p.startswith("pass")])
        rows.append([name, passes, run.total_time,
                     run.bytes_io / run.total_bytes])
    save_result("coalescing",
                "the pass-count ladder: dsort(2) < csort(3) < csort4(4)\n"
                + render_table(["program", "data passes", "total (s)",
                                "disk bytes / data volume"], rows))
    dsort, csort, csort4 = (results[n] for n in ("dsort", "csort",
                                                 "csort4"))
    assert dsort.total_time < csort.total_time < csort4.total_time
    # I/O volumes are exact: 4x, 6x (+sampling noise), 8x
    assert csort.bytes_io / csort.total_bytes == \
        pytest.approx(6.0, rel=0.01)
    assert csort4.bytes_io / csort4.total_bytes == \
        pytest.approx(8.0, rel=0.01)
    assert dsort.bytes_io / dsort.total_bytes == \
        pytest.approx(4.0, rel=0.15)
