"""Figure 8(a): dsort vs csort, 16-byte records, four distributions.

Reproduced shape (paper, Section VI):
* dsort beats csort on every distribution;
* dsort's total lands in roughly 74%-85% of csort's;
* csort's three passes cost roughly equal time each;
* dsort's sampling phase is negligible;
* partition sizes stay within ~10% of the average.
"""

from conftest import save_result

from repro.bench import figure8_experiment, render_figure8


def test_figure8a_16_byte_records(once):
    results = once(figure8_experiment, 16)
    save_result("figure8a", render_figure8(results, 16))
    for dist, pair in results.items():
        dsort, csort = pair["dsort"], pair["csort"]
        assert dsort.verified and csort.verified
        ratio = dsort.total_time / csort.total_time
        assert ratio < 1.0, f"dsort must beat csort on {dist}"
        assert 0.60 <= ratio <= 0.95, (
            f"{dist}: ratio {ratio:.3f} outside the paper's band")
        # csort passes roughly equal (paper: ~5 min each)
        passes = list(csort.phase_times.values())
        assert max(passes) / min(passes) < 1.6
        # sampling small; its cost is O(samples) and independent of the
        # data volume, so the fraction here (simulation scale) is an
        # upper bound on the paper-scale fraction —
        # tests/sorting/test_dsort.py checks < 5% at a larger volume
        assert dsort.phase_times["sampling"] < 0.15 * dsort.total_time
        # partition balance (paper: at most 10% over average)
        assert dsort.partition_imbalance <= 1.10
