"""Section VI prose: "All results reported here are for the best choices
of buffer sizes."  Sweep dsort's pass-1 block size and show that buffer
size materially moves total time (small buffers pay per-operation
overhead; the curve flattens once transfers amortize it).
"""

from conftest import save_result

from repro.bench import buffer_sweep_experiment, render_table


def test_buffer_size_sweep(once):
    results = once(buffer_sweep_experiment, (256, 512, 1024, 2048, 4096))
    rows = [[block, run.phase_times["pass1"], run.phase_times["pass2"],
             run.total_time]
            for block, run in sorted(results.items())]
    save_result("buffer_sweep", "dsort total time vs pass-1 buffer size "
                "(records)\n" + render_table(
                    ["block_records", "pass1", "pass2", "total"], rows))
    totals = {block: run.total_time for block, run in results.items()}
    # growing the buffer from the smallest to the largest size must help
    assert totals[4096] < totals[256]
    # and the best size is not the smallest one
    best = min(totals, key=totals.get)
    assert best != 256
    for run in results.values():
        assert run.verified
