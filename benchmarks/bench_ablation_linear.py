"""Section VIII: the planned ablation — dsort with multiple pipelines vs
dsort restricted to single, linear pipelines on each node.

The paper poses this as an open question ("we have not investigated this
issue yet").  Our model's answer: with balanced inputs and eager message
buffering the linear restriction costs only a couple of percent, but on
inputs that skew the communication (sorted keys = a moving hot receiver)
the single pipeline stalls and the gap widens — and the linear variant
needs the "extensive bookkeeping" (overflow hoards, drain buffers,
non-blocking probes) the paper predicted.  See EXPERIMENTS.md.
"""

from conftest import save_result

from repro.bench import render_table
from repro.bench.harness import run_sort
from repro.pdm.records import RecordSchema


def test_multi_vs_linear_pipelines(once):
    def experiment():
        schema = RecordSchema.paper_16()
        out = {}
        for dist in ("uniform", "sorted"):
            out[dist] = {
                "multi": run_sort("dsort", dist, schema),
                "linear": run_sort("dsort-linear", dist, schema),
            }
        return out

    results = once(experiment)
    rows = []
    for dist, pair in results.items():
        ratio = pair["linear"].total_time / pair["multi"].total_time
        rows.append([dist, pair["multi"].total_time,
                     pair["linear"].total_time, ratio])
    save_result("ablation_linear",
                "dsort pipeline-structure ablation (linear/multi ratio)\n"
                + render_table(["distribution", "multi total",
                                "linear total", "linear/multi"], rows))
    for dist, pair in results.items():
        assert pair["multi"].verified and pair["linear"].verified
        # multiple pipelines never lose...
        assert pair["linear"].total_time >= pair["multi"].total_time, dist
    # ...and win clearly once communication skews
    skewed = results["sorted"]
    assert skewed["linear"].total_time > 1.03 * skewed["multi"].total_time
