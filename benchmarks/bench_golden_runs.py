"""Golden runs: record + replay the flagship experiments as provenance.

Every benchmark in this suite reports numbers; this one makes the numbers
*auditable*.  It records a provenance record (repro.prov) for one dsort
run, one csort run, and one chaos run, replays each in-session, and
asserts byte-exact reproduction.  The records are saved under
``results/golden_<name>.prov.json`` so EXPERIMENTS.md can point every
quoted number at a replayable artifact (``python -m repro replay
benchmarks/results/golden_dsort.prov.json``).

The records are replayed fresh each session rather than diffed against
committed ones: the code fingerprint (and thus the digests, whenever
behaviour shifts) legitimately changes between revisions — cross-revision
comparison is exactly what ``repro replay`` is *for*, not what CI should
hard-code.
"""

import os

from conftest import RESULTS_DIR, save_result

from repro.bench.harness import run_sort
from repro.bench.reporting import render_table
from repro.faults import chaos_plan, run_chaos_dsort
from repro.pdm.records import RecordSchema
from repro.prov import replay

NODES = 3
RECORDS = 1500
SEED = 42


def _save_record(name, record):
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"golden_{name}.prov.json")
    record.save(path)
    print(f"[saved provenance record to {path}]")
    return path


def golden_runs_experiment():
    schema = RecordSchema.paper_16()
    runs = {}
    for sorter in ("dsort", "csort"):
        run = run_sort(sorter, "uniform", schema, n_nodes=NODES,
                       n_per_node=RECORDS, seed=SEED, provenance=True)
        runs[sorter] = run.provenance
    chaos = run_chaos_dsort(
        n_nodes=NODES, records_per_node=RECORDS, seed=SEED,
        plan=chaos_plan(SEED, NODES, disk_fault_rate=0.02, drop_rate=0.01,
                        permanent_disk_op=25, permanent_disk_rank=1),
        pass_retries=2, block_records=128, vertical_block_records=64,
        out_block_records=128)
    assert chaos.verified
    runs["chaos"] = chaos.provenance
    results = {name: replay(record) for name, record in runs.items()}
    return runs, results


def test_golden_runs_record_and_replay(once):
    records, results = once(golden_runs_experiment)

    rows = []
    for name, record in records.items():
        _save_record(name, record)
        result = results[name]
        rows.append([name, record.kind, record.record_digest()[:16],
                     "REPRODUCED" if result.ok else "DIVERGED"])
    save_result(
        "golden_runs",
        f"golden provenance runs ({NODES} nodes, {NODES * RECORDS} "
        f"records, seed {SEED}) — record, replay, verify digests\n"
        + render_table(["run", "kind", "record digest", "replay"], rows))

    for name, result in results.items():
        assert result.ok, f"{name} diverged: {result.to_json()}"
        assert result.code_match
    # the chaos record really captured the injected faults
    assert records["chaos"].fault_plan is not None
    assert records["chaos"].digests["output"]
