"""FGRace overhead: host wall-clock cost of the race detector.

FGRace consumes no virtual time by design — vector-clock joins and
effect replays happen between blocking points — so the *simulated*
elapsed time of a race-detected run is identical to the plain run,
asserted below.  What it costs is host CPU: a clock snapshot/join on
every channel operation plus one effect-cell replay per stage access.
This benchmark races three arms over a full dsort run — plain, FGSan
(`REPRO_SANITIZE=1`), and FGRace (`REPRO_RACE=1`) — interleaving
repetitions so machine drift hits all arms equally.  The acceptance
bound (CI-gated): FGRace stays within 2x of the plain run.
"""

import os
import statistics
import time

from conftest import save_result

from repro.bench import render_table
from repro.bench.harness import run_sort
from repro.cluster import HardwareModel
from repro.pdm.records import RecordSchema

NODES = 2
RECORDS = 32768
REPS = 5

ARMS = {
    "plain": {},
    "REPRO_SANITIZE=1": {"REPRO_SANITIZE": "1"},
    "REPRO_RACE=1": {"REPRO_RACE": "1"},
}


def _hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


def _timed_run(env):
    previous = {key: os.environ.get(key)
                for key in ("REPRO_SANITIZE", "REPRO_RACE")}
    os.environ.update({"REPRO_SANITIZE": "0", "REPRO_RACE": "0"})
    os.environ.update(env)
    try:
        t0 = time.perf_counter()
        run = run_sort("dsort", "uniform", RecordSchema.paper_16(),
                       n_nodes=NODES, n_per_node=RECORDS, hardware=_hw())
        wall = time.perf_counter() - t0
    finally:
        for key, value in previous.items():
            if value is None:
                del os.environ[key]
            else:
                os.environ[key] = value
    return wall, run


def race_overhead_experiment():
    walls = {arm: [] for arm in ARMS}
    runs = {}
    for _ in range(REPS):
        for arm, env in ARMS.items():
            wall, run = _timed_run(env)
            walls[arm].append(wall)
            runs[arm] = run
    return walls, runs


def test_race_overhead(once):
    walls, runs = once(race_overhead_experiment)

    medians = {arm: statistics.median(times)
               for arm, times in walls.items()}
    plain_wall = medians["plain"]
    rows = [[arm, f"{medians[arm]:.3f}",
             f"{medians[arm] / plain_wall:.2f}x",
             f"{runs[arm].total_time:.6f}"]
            for arm in ARMS]
    save_result(
        "race_overhead",
        f"FGRace overhead on dsort ({NODES} nodes, "
        f"{NODES * RECORDS} records, median of {REPS} interleaved reps)\n"
        + render_table(
            ["mode", "host wall s", "vs plain", "simulated s"], rows))

    # the headline guarantee: detection never changes the simulation
    assert all(run.verified for run in runs.values())
    assert runs["REPRO_RACE=1"].total_time == runs["plain"].total_time
    # the acceptance bound: happens-before tracking rides existing
    # channel operations, so it must stay cheap
    assert medians["REPRO_RACE=1"] / plain_wall <= 2.0
