"""Section VII related work: dsort vs a NOW-Sort-style two-pass sort.

NOW-Sort assumes splitters are known in advance and skips PDM striping
(paper, Section VII).  The comparison quantifies what dsort pays for its
generality — and what NOW-Sort pays for its assumptions when the keys are
not uniform: with fixed splitters, skewed inputs pile onto a few nodes and
the hottest disk sets the pace.
"""

from conftest import save_result

from repro.bench import render_table
from repro.bench.harness import run_sort
from repro.pdm.records import RecordSchema


def test_dsort_vs_nowsort(once):
    def experiment():
        schema = RecordSchema.paper_16()
        out = {}
        for dist in ("uniform", "std_normal"):
            out[dist] = {
                "dsort": run_sort("dsort", dist, schema),
                "nowsort": run_sort("nowsort", dist, schema),
            }
        return out

    results = once(experiment)
    rows = []
    for dist, pair in results.items():
        for name in ("dsort", "nowsort"):
            run = pair[name]
            rows.append([dist, name, run.total_time,
                         run.partition_imbalance])
    save_result("related_work_nowsort",
                "dsort vs NOW-Sort-style (fixed splitters, no striping)\n"
                + render_table(["distribution", "program", "total",
                                "partition max/avg"], rows))
    uniform = results["uniform"]
    skewed = results["std_normal"]
    # on its home turf (uniform keys), the simpler program wins a little:
    # no sampling phase, no striping exchange
    assert uniform["nowsort"].total_time < uniform["dsort"].total_time
    # off it, fixed splitters produce gross imbalance while sampling
    # keeps dsort tight...
    assert skewed["nowsort"].partition_imbalance > 1.5
    assert skewed["dsort"].partition_imbalance < 1.1
    # ...and the hottest node slows the skewed nowsort run down
    assert (skewed["nowsort"].total_time
            > 1.2 * uniform["nowsort"].total_time)
