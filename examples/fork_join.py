#!/usr/bin/env python
"""Fork-join pipelines: route work through parallel branches.

A trunk pipeline reads blocks; a fork stage routes each block by content
to one of two branches — a cheap passthrough for already-sorted blocks and
an expensive sort for the rest — and a join stage restores the original
order before the post pipeline writes.  The branches run concurrently, so
the expensive one does not stall the cheap one.

Run:  python examples/fork_join.py
"""

import numpy as np

from repro.cluster import Cluster, HardwareModel
from repro.core import FGProgram, Stage, add_fork_join
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema

SCHEMA = RecordSchema.paper_16()
N_BLOCKS = 16
BLOCK_RECORDS = 4096


def main() -> None:
    cluster = Cluster(n_nodes=1,
                      hardware=HardwareModel.scaled_paper_cluster())
    node = cluster.node(0)
    rng = np.random.default_rng(5)
    rf_in = RecordFile(node.disk, "in", SCHEMA)
    rf_out = RecordFile(node.disk, "out", SCHEMA)

    # half the blocks are pre-sorted, half are random
    blocks = []
    for b in range(N_BLOCKS):
        keys = rng.integers(0, 2**63, size=BLOCK_RECORDS, dtype=np.uint64)
        if b % 2 == 0:
            keys = np.sort(keys)
        blocks.append(keys)
        rf_in.poke(b * BLOCK_RECORDS, SCHEMA.from_keys(keys))

    stats = {"sorted": 0, "unsorted": 0}

    def node_main(node, comm):
        prog = FGProgram(node.kernel, env={"node": node}, name="fj-demo")

        def read(ctx, buf):
            buf.put(rf_in.read(buf.round * BLOCK_RECORDS, BLOCK_RECORDS))
            buf.tags["block"] = buf.round
            return buf

        def passthrough(ctx, buf):
            stats["sorted"] += 1
            return buf

        def sort_block(ctx, buf):
            stats["unsorted"] += 1
            records = buf.view(SCHEMA.dtype)
            node.compute_sort(len(records))
            buf.put(SCHEMA.sort(records))
            return buf

        def write(ctx, buf):
            rf_out.write(buf.tags["block"] * BLOCK_RECORDS,
                         buf.view(SCHEMA.dtype))
            return buf

        def route(buf):
            records = buf.view(SCHEMA.dtype)
            return ("sorted" if SCHEMA.is_sorted(records)
                    else "unsorted")

        add_fork_join(
            prog, "classify",
            pre=[Stage.map("read", read)],
            branches={
                "sorted": [Stage.map("pass", passthrough)],
                "unsorted": [Stage.map("sort", sort_block)],
            },
            post=[Stage.map("write", write)],
            route=route,
            nbuffers=3, buffer_bytes=BLOCK_RECORDS * SCHEMA.record_bytes,
            rounds=N_BLOCKS)
        prog.run()
        return prog.thread_count

    (threads,) = cluster.run(node_main)

    # verify: every block individually sorted, content preserved per block
    for b, keys in enumerate(blocks):
        out = rf_out.peek(b * BLOCK_RECORDS, BLOCK_RECORDS)
        assert SCHEMA.is_sorted(out), f"block {b} not sorted"
        assert np.array_equal(out["key"], np.sort(keys))

    print("fork-join demo: content-routed block sorting")
    print(f"  blocks routed: {stats['sorted']} already-sorted, "
          f"{stats['unsorted']} needing work")
    print(f"  FG threads: {threads} "
          "(fork and join are single intersecting-stage threads)")
    print(f"  simulated time: {cluster.kernel.now() * 1e3:.2f} ms")
    print("  all blocks verified sorted and content-preserved")


if __name__ == "__main__":
    main()
