#!/usr/bin/env python
"""Out-of-core distribution sort (dsort) on a simulated cluster.

Runs the paper's headline program end to end: splitter sampling, pass 1
(partition + distribute via disjoint pipelines), pass 2 (merge +
load-balance + stripe via virtual/intersecting pipelines), then verifies
the striped output and prints the per-phase breakdown and the comparison
against the csort baseline.

Run:  python examples/distribution_sort.py [distribution]
      (distribution: uniform | all_equal | std_normal | poisson | ...)
"""

import sys

from repro.cluster import Cluster, HardwareModel
from repro.pdm.records import RecordSchema
from repro.sorting.columnsort import CsortConfig, run_csort
from repro.sorting.dsort import DsortConfig, run_dsort
from repro.sorting.verify import verify_striped_output
from repro.workloads.distributions import DISTRIBUTIONS
from repro.workloads.generator import generate_input

N_NODES = 16
RECORDS_PER_NODE = 16384
SCHEMA = RecordSchema.paper_16()


def main(distribution: str = "uniform") -> None:
    if distribution not in DISTRIBUTIONS:
        raise SystemExit(f"unknown distribution {distribution!r}; "
                         f"choose from {sorted(DISTRIBUTIONS)}")
    hardware = HardwareModel.scaled_paper_cluster()
    dsort_cfg = DsortConfig(block_records=2048,
                            vertical_block_records=1024,
                            out_block_records=512, oversample=64)
    csort_cfg = CsortConfig(out_block_records=512)

    print(f"sorting {N_NODES * RECORDS_PER_NODE} {SCHEMA.record_bytes}-"
          f"byte records ({distribution}) on {N_NODES} simulated nodes\n")

    # -- dsort ------------------------------------------------------------
    cluster = Cluster(n_nodes=N_NODES, hardware=hardware)
    manifest = generate_input(cluster, SCHEMA, RECORDS_PER_NODE,
                              distribution, seed=1)
    reports = cluster.run(run_dsort, SCHEMA, dsort_cfg)
    verify_striped_output(cluster, manifest, dsort_cfg.output_file,
                          dsort_cfg.out_block_records)
    dsort_time = cluster.kernel.now()
    rep = reports[0]
    sizes = [r.partition_records for r in reports]
    print("dsort   (2 passes + sampling):")
    print(f"  sampling: {rep.sampling_time * 1e3:8.2f} ms")
    print(f"  pass 1:   {rep.pass1_time * 1e3:8.2f} ms "
          "(partition + distribute; disjoint pipelines)")
    print(f"  pass 2:   {rep.pass2_time * 1e3:8.2f} ms "
          f"(merge {reports[0].n_runs} runs/node; intersecting pipelines)")
    print(f"  total:    {dsort_time * 1e3:8.2f} ms  -- output verified")
    print(f"  partition balance: max/avg = "
          f"{max(sizes) / (sum(sizes) / len(sizes)):.3f}")

    # -- csort baseline ---------------------------------------------------------
    cluster = Cluster(n_nodes=N_NODES, hardware=hardware)
    manifest = generate_input(cluster, SCHEMA, RECORDS_PER_NODE,
                              distribution, seed=1)
    creports = cluster.run(run_csort, SCHEMA, csort_cfg)
    verify_striped_output(cluster, manifest, csort_cfg.output_file,
                          csort_cfg.out_block_records)
    csort_time = cluster.kernel.now()
    crep = creports[0]
    print("\ncsort   (3 passes, columnsort baseline):")
    print(f"  pass 1:   {crep.pass1_time * 1e3:8.2f} ms (steps 1-2)")
    print(f"  pass 2:   {crep.pass2_time * 1e3:8.2f} ms (steps 3-4)")
    print(f"  pass 3:   {crep.pass3_time * 1e3:8.2f} ms (steps 5-8)")
    print(f"  total:    {csort_time * 1e3:8.2f} ms  -- output verified")

    ratio = dsort_time / csort_time
    print(f"\ndsort / csort = {ratio:.2%}  "
          "(paper, Figure 8: 74.26%-85.06%)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "uniform")
