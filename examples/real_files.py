#!/usr/bin/env python
"""FG on the real-time kernel with real files.

Everything else in examples/ uses the deterministic virtual-time kernel;
this one runs the same stage code on :class:`RealTimeKernel` with a
:class:`FileStorage` backend, so the pipeline performs genuine out-of-core
I/O against the host filesystem while the stages run as free OS threads.
This mirrors the paper's actual deployment style (pthread stages + C stdio
I/O) and demonstrates that the library's programs are kernel-agnostic.

Run:  python examples/real_files.py
"""

import tempfile
import time

import numpy as np

from repro.cluster import Cluster, FileStorage, HardwareModel
from repro.core import FGProgram, Stage
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sim import RealTimeKernel

SCHEMA = RecordSchema.paper_16()
N_BLOCKS = 64
BLOCK_RECORDS = 8192


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-fg-") as tmp:
        # time_scale=0: modeled latencies become yields; the real latency
        # comes from the genuine file I/O below
        kernel = RealTimeKernel(time_scale=0.0)
        cluster = Cluster(n_nodes=1, hardware=HardwareModel(),
                          kernel=kernel, storages=[FileStorage(tmp)])
        node = cluster.node(0)

        rng = np.random.default_rng(0)
        keys = rng.integers(0, 2**63, size=N_BLOCKS * BLOCK_RECORDS,
                            dtype=np.uint64)
        rf_in = RecordFile(node.disk, "input.dat", SCHEMA)
        rf_out = RecordFile(node.disk, "sorted-blocks.dat", SCHEMA)
        rf_in.poke(0, SCHEMA.from_keys(keys))

        def node_main(node, comm):
            prog = FGProgram(node.kernel, env={"node": node})

            def read(ctx, buf):
                buf.put(rf_in.read(buf.round * BLOCK_RECORDS,
                                   BLOCK_RECORDS))
                return buf

            def sort(ctx, buf):
                buf.put(SCHEMA.sort(buf.view(SCHEMA.dtype)))
                return buf

            def write(ctx, buf):
                rf_out.write(buf.round * BLOCK_RECORDS,
                             buf.view(SCHEMA.dtype))
                return buf

            prog.add_pipeline(
                "sortblocks",
                [Stage.map("read", read), Stage.map("sort", sort),
                 Stage.map("write", write)],
                nbuffers=4,
                buffer_bytes=BLOCK_RECORDS * SCHEMA.record_bytes,
                rounds=N_BLOCKS)
            prog.run()

        t0 = time.monotonic()
        cluster.spawn_spmd(node_main)
        kernel.run(timeout=120.0)
        wall = time.monotonic() - t0

        # verify every block is sorted and the multiset survived
        out = rf_out.read_all()
        for b in range(N_BLOCKS):
            block = out[b * BLOCK_RECORDS:(b + 1) * BLOCK_RECORDS]
            assert SCHEMA.is_sorted(block), f"block {b} not sorted"
        assert np.array_equal(np.sort(out["key"]), np.sort(keys))

        size_mb = N_BLOCKS * BLOCK_RECORDS * SCHEMA.record_bytes / 2**20
        print("real-file FG pipeline (RealTimeKernel + FileStorage):")
        print(f"  data:   {size_mb:.1f} MiB in {N_BLOCKS} blocks "
              f"under {tmp}")
        print(f"  wall:   {wall * 1e3:.1f} ms "
              "(real threads, real disk I/O)")
        print("  output: every block sorted, multiset verified")


if __name__ == "__main__":
    main()
