#!/usr/bin/env python
"""Quickstart: your first FG pipeline.

Builds the pipeline of the paper's Figures 1-2 on one simulated node: a
read stage, a compute stage, and a write stage, each running in its own
thread, passing fixed-size buffers through queues while the sink recycles
them to the source.  Then it runs the same work serially and prints the
overlap speedup — FG's reason to exist.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import Cluster, HardwareModel
from repro.core import FGProgram, Stage
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema

N_BLOCKS = 24
BLOCK_RECORDS = 4096
SCHEMA = RecordSchema.paper_16()


def make_cluster():
    cluster = Cluster(n_nodes=1,
                      hardware=HardwareModel.scaled_paper_cluster())
    node = cluster.node(0)
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 2**63, size=N_BLOCKS * BLOCK_RECORDS,
                        dtype=np.uint64)
    RecordFile(node.disk, "in", SCHEMA).poke(0, SCHEMA.from_keys(keys))
    return cluster


def run_pipelined():
    cluster = make_cluster()
    node = cluster.node(0)
    rf_in = RecordFile(node.disk, "in", SCHEMA)
    rf_out = RecordFile(node.disk, "out", SCHEMA)
    compute_cost = node.hardware.disk_time(BLOCK_RECORDS
                                           * SCHEMA.record_bytes)

    def main(node, comm):
        prog = FGProgram(node.kernel, env={"node": node})

        def read(ctx, buf):
            buf.put(rf_in.read(buf.round * BLOCK_RECORDS, BLOCK_RECORDS))
            return buf

        def compute(ctx, buf):
            # stand-in for real per-block work; charges one core for a
            # block-read-equivalent so there is something to overlap
            node.compute(compute_cost)
            records = buf.view(SCHEMA.dtype)
            buf.put(SCHEMA.sort(records))
            return buf

        def write(ctx, buf):
            rf_out.write(buf.round * BLOCK_RECORDS, buf.view(SCHEMA.dtype))
            return buf

        prog.add_pipeline(
            "work",
            [Stage.map("read", read), Stage.map("compute", compute),
             Stage.map("write", write)],
            nbuffers=4, buffer_bytes=BLOCK_RECORDS * SCHEMA.record_bytes,
            rounds=N_BLOCKS)
        prog.run()
        return prog.stage_stats()

    (stats,) = cluster.run(main)
    return cluster.kernel.now(), stats


def run_serial():
    cluster = make_cluster()
    node = cluster.node(0)
    rf_in = RecordFile(node.disk, "in", SCHEMA)
    rf_out = RecordFile(node.disk, "out", SCHEMA)
    compute_cost = node.hardware.disk_time(BLOCK_RECORDS
                                           * SCHEMA.record_bytes)

    def main(node, comm):
        for b in range(N_BLOCKS):
            records = rf_in.read(b * BLOCK_RECORDS, BLOCK_RECORDS)
            node.compute(compute_cost)
            rf_out.write(b * BLOCK_RECORDS, SCHEMA.sort(records))

    cluster.run(main)
    return cluster.kernel.now()


def main():
    pipelined, stats = run_pipelined()
    serial = run_serial()
    print("FG quickstart: read -> compute -> write on one node")
    print(f"  blocks:          {N_BLOCKS} x {BLOCK_RECORDS} records")
    print(f"  serial time:     {serial * 1e3:8.2f} ms (simulated)")
    print(f"  pipelined time:  {pipelined * 1e3:8.2f} ms (simulated)")
    print(f"  overlap speedup: {serial / pipelined:8.2f}x")
    print("\nper-stage statistics (pipelined run):")
    for name, st in stats.items():
        print(f"  {name:8s} accepts={st.accepts:3d} "
              f"busy={st.busy * 1e3:7.2f} ms "
              f"waiting={st.accept_wait * 1e3:7.2f} ms")
    assert serial / pipelined > 1.3


if __name__ == "__main__":
    main()
