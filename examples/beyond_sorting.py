#!/usr/bin/env python
"""Out-of-core algorithms beyond sorting (paper, Section VIII).

The paper closes by arguing FG's extensions suit "out-of-core algorithms
other than sorting".  This example runs the two applications this library
supplies on a simulated cluster:

1. **matrix transpose** — the classic PDM permutation, one linear pipeline
   per node with perfectly balanced pairwise exchanges;
2. **group-by aggregation** — hash-partitioned, pre-aggregating,
   combining-merge group-by-sum, reusing dsort's disjoint + virtual +
   intersecting pipeline structure for a non-sorting computation.

Run:  python examples/beyond_sorting.py
"""

from collections import Counter

import numpy as np

from repro.apps.groupby import GroupByConfig, KeyValueSchema, run_groupby
from repro.apps.transpose import MATRIX_FILE, OUTPUT_FILE, run_transpose
from repro.cluster import Cluster, HardwareModel
from repro.pdm.blockfile import RecordFile

P = 4
N = 256              # matrix side
KV_PER_NODE = 20000  # records per node for the group-by
KEY_SPACE = 500      # distinct keys


def demo_transpose() -> None:
    cluster = Cluster(n_nodes=P,
                      hardware=HardwareModel.scaled_paper_cluster())
    rng = np.random.default_rng(0)
    matrix = rng.random((N, N))
    rows = N // P
    for p, node in enumerate(cluster.nodes):
        block = np.ascontiguousarray(matrix[p * rows:(p + 1) * rows])
        node.disk.storage.write(MATRIX_FILE, 0,
                                block.reshape(-1).view(np.uint8))
    cluster.run(run_transpose, N)
    out_blocks = []
    for node in cluster.nodes:
        raw = node.disk.storage.read(OUTPUT_FILE, 0, rows * N * 8)
        out_blocks.append(raw.view("<f8").reshape(rows, N))
    assert np.allclose(np.vstack(out_blocks), matrix.T)
    mb = N * N * 8 / 2**20
    print(f"transpose: {N}x{N} ({mb:.1f} MiB) on {P} nodes in "
          f"{cluster.kernel.now() * 1e3:.2f} ms simulated — verified")


def demo_groupby() -> None:
    schema = KeyValueSchema()
    cluster = Cluster(n_nodes=P,
                      hardware=HardwareModel.scaled_paper_cluster())
    rng = np.random.default_rng(1)
    expected: Counter = Counter()
    for node in cluster.nodes:
        keys = rng.integers(0, KEY_SPACE, size=KV_PER_NODE,
                            dtype=np.uint64)
        values = rng.integers(0, 1000, size=KV_PER_NODE, dtype=np.uint64)
        for k, v in zip(keys.tolist(), values.tolist()):
            expected[k] += v
        RecordFile(node.disk, "kv-input", schema).poke(
            0, schema.make(keys, values))
    reports = cluster.run(run_groupby, GroupByConfig())
    groups = {}
    for node in cluster.nodes:
        records = RecordFile(node.disk, "kv-groups", schema).read_all()
        groups.update(zip(records["key"].tolist(),
                          records["value"].tolist()))
    assert groups == dict(expected)
    n_in = P * KV_PER_NODE
    n_out = sum(r.distinct_keys for r in reports)
    print(f"group-by:  {n_in} records -> {n_out} groups on {P} nodes in "
          f"{cluster.kernel.now() * 1e3:.2f} ms simulated — verified "
          f"({n_in // n_out}x aggregation)")


def main() -> None:
    print("FG beyond sorting (the paper's closing suggestion):\n")
    demo_transpose()
    demo_groupby()


if __name__ == "__main__":
    main()
