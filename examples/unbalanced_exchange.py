#!/usr/bin/env python
"""Disjoint send/receive pipelines under unbalanced communication
(paper, Figure 4 / Section IV).

Four nodes exchange records, but the volumes are deliberately lopsided:
node 0 sends almost everything to node 1 at one moment and to node 2 at
another.  A single pipeline would have to accept and convey buffers at
different rates ("buffers begin to pile up within the stage"); with two
disjoint pipelines each side runs at its own pace and everything shuts
down cleanly via per-pipeline cabooses.

Run:  python examples/unbalanced_exchange.py
"""

import numpy as np

from repro.cluster import Cluster, HardwareModel
from repro.core import FGProgram, Stage
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema

SCHEMA = RecordSchema.paper_16()
N_NODES = 4
BLOCKS_PER_NODE = 12
BLOCK_RECORDS = 2048
TAG_DATA = 5


def node_main(node, comm):
    rank, P = comm.rank, comm.size
    rng = np.random.default_rng(rank)
    rf_in = RecordFile(node.disk, "in", SCHEMA)
    rf_out = RecordFile(node.disk, "out", SCHEMA)
    keys = rng.integers(0, 2**63, size=BLOCKS_PER_NODE * BLOCK_RECORDS,
                        dtype=np.uint64)
    rf_in.poke(0, SCHEMA.from_keys(keys))

    prog = FGProgram(node.kernel, env={"node": node, "comm": comm},
                     name=f"xchg@{rank}")

    # -- send pipeline: read -> route (deliberately skewed) ----------------

    def read(ctx, buf):
        buf.put(rf_in.read(buf.round * BLOCK_RECORDS, BLOCK_RECORDS))
        return buf

    def route(ctx):
        while True:
            buf = ctx.accept()
            if buf.is_caboose:
                break
            # skew: early blocks all go to one node, later blocks to
            # another — the send/receive rates of each node differ wildly
            dest = (rank + 1) % P if buf.round < BLOCKS_PER_NODE // 2 \
                else (rank + 2) % P
            comm.send(dest, buf.view(SCHEMA.dtype).copy(), tag=TAG_DATA)
            ctx.convey(buf)
        for dest in range(P):
            comm.send(dest, SCHEMA.empty(0), tag=TAG_DATA)  # end marker
        ctx.forward(buf)

    prog.add_pipeline(
        "send", [Stage.map("read", read),
                 Stage.source_driven("route", route)],
        nbuffers=3, buffer_bytes=BLOCK_RECORDS * SCHEMA.record_bytes,
        rounds=BLOCKS_PER_NODE)

    # -- receive pipeline: receive -> save (rounds unknown!) ------------------

    received_blocks = []

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        ends = 0
        while ends < P:
            _, payload = comm.recv(tag=TAG_DATA)
            if len(payload) == 0:
                ends += 1
                continue
            buf = ctx.accept()
            buf.put(payload)
            ctx.convey(buf)
        ctx.convey_caboose(pipeline)

    def save(ctx, buf):
        records = buf.view(SCHEMA.dtype)
        rf_out.write(len(received_blocks) * BLOCK_RECORDS, records)
        received_blocks.append(len(records))
        return buf

    prog.add_pipeline(
        "recv", [Stage.source_driven("receive", receive),
                 Stage.map("save", save)],
        nbuffers=3, buffer_bytes=BLOCK_RECORDS * SCHEMA.record_bytes,
        rounds=None)

    prog.run()
    return sum(received_blocks)


def main() -> None:
    cluster = Cluster(n_nodes=N_NODES,
                      hardware=HardwareModel.scaled_paper_cluster())
    received = cluster.run(node_main)
    sent_total = N_NODES * BLOCKS_PER_NODE * BLOCK_RECORDS
    print("unbalanced exchange across "
          f"{N_NODES} nodes ({BLOCKS_PER_NODE} blocks/node):")
    for rank, count in enumerate(received):
        print(f"  node {rank}: received {count:6d} records "
              f"(sent {BLOCKS_PER_NODE * BLOCK_RECORDS})")
    assert sum(received) == sent_total
    print(f"total conserved: {sum(received)} records")
    print(f"simulated time: {cluster.kernel.now() * 1e3:.2f} ms")
    print("note: every node sent and received different volumes at "
          "different moments,\nyet both pipelines ran at their own pace "
          "and shut down cleanly.")


if __name__ == "__main__":
    main()
