#!/usr/bin/env python
"""Visualizing FG's latency overlap with the execution tracer.

Attaches a :class:`Tracer` to the virtual-time kernel, runs a 3-stage
pipeline, and prints a Gantt chart of every FG thread — you can *see* the
read, compute, and write stages interleaving, the source/sink recycling,
and where each stage waits.

The same trace then feeds the ``repro.obs`` exporters: a Chrome-trace
JSON you can open in https://ui.perfetto.dev, a kernel-time metrics
snapshot, and a bottleneck report naming the limiting stage.

Run:  python examples/trace_pipeline.py
"""

import numpy as np

from repro.cluster import Cluster, HardwareModel
from repro.core import FGProgram, Stage
from repro.obs import (
    analyze_bottleneck,
    write_chrome_trace,
    write_metrics_json,
)
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sim import Tracer, VirtualTimeKernel

SCHEMA = RecordSchema.paper_16()
N_BLOCKS = 8
BLOCK_RECORDS = 4096


def main() -> None:
    tracer = Tracer()
    kernel = VirtualTimeKernel(tracer=tracer)
    kernel.enable_metrics()
    cluster = Cluster(n_nodes=1,
                      hardware=HardwareModel.scaled_paper_cluster(),
                      kernel=kernel)
    node = cluster.node(0)
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2**63, size=N_BLOCKS * BLOCK_RECORDS,
                        dtype=np.uint64)
    rf_in = RecordFile(node.disk, "in", SCHEMA)
    rf_out = RecordFile(node.disk, "out", SCHEMA)
    rf_in.poke(0, SCHEMA.from_keys(keys))
    compute_cost = node.hardware.disk_time(BLOCK_RECORDS
                                           * SCHEMA.record_bytes)

    def node_main(node, comm):
        prog = FGProgram(node.kernel, env={"node": node}, name="demo")

        def read(ctx, buf):
            buf.put(rf_in.read(buf.round * BLOCK_RECORDS, BLOCK_RECORDS))
            return buf

        def compute(ctx, buf):
            node.compute(compute_cost)
            return buf

        def write(ctx, buf):
            rf_out.write(buf.round * BLOCK_RECORDS, buf.view(SCHEMA.dtype))
            return buf

        prog.add_pipeline(
            "p", [Stage.map("read", read), Stage.map("compute", compute),
                  Stage.map("write", write)],
            nbuffers=3, buffer_bytes=BLOCK_RECORDS * SCHEMA.record_bytes,
            rounds=N_BLOCKS)
        prog.run()

    cluster.run(node_main)

    print("execution trace of one FG pipeline "
          f"({N_BLOCKS} blocks, 3 buffers):\n")
    stage_rows = [name for name in tracer.process_names()
                  if name.startswith("demo.")]
    print(tracer.gantt(width=68, processes=stage_rows))
    print(f"\ntotal simulated time: {kernel.now() * 1e3:.2f} ms")
    print(f"trace events recorded: {len(tracer.events)}")

    # the same trace, machine-readable: Chrome-trace JSON (open in
    # https://ui.perfetto.dev) plus the kernel-time metrics snapshot
    doc = write_chrome_trace("trace_pipeline.trace.json", tracer,
                             metrics=kernel.metrics, processes=stage_rows)
    write_metrics_json("trace_pipeline.metrics.json", kernel.metrics)
    print(f"\nwrote trace_pipeline.trace.json "
          f"({len(doc['traceEvents'])} Chrome-trace events) and "
          "trace_pipeline.metrics.json")

    print("\n" + analyze_bottleneck(tracer, processes=stage_rows).render())


if __name__ == "__main__":
    main()
