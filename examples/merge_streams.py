#!/usr/bin/env python
"""Intersecting pipelines with virtual stages (paper, Figure 5).

Merges many small sorted runs on one node into a single sorted stream:

* one *vertical* pipeline per run, whose read stages are **virtual** (one
  shared thread for all of them, sources and sinks auto-virtualized);
* a single **merge** stage where all vertical pipelines intersect the
  *horizontal* output pipeline — one thread, accepting per-pipeline;
* the horizontal pipeline's buffers are larger than the vertical ones,
  exactly as the paper suggests.

Run:  python examples/merge_streams.py [n_runs]
"""

import sys

import numpy as np

from repro.cluster import Cluster, HardwareModel
from repro.core import FGProgram, Stage
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sorting.merge import BlockMerger

SCHEMA = RecordSchema.paper_16()
RUN_RECORDS = 4096
VERTICAL_BLOCK = 512     # small buffers, many of them (vertical)
HORIZONTAL_BLOCK = 4096  # one big output stream (horizontal)


def main(n_runs: int = 64) -> None:
    cluster = Cluster(n_nodes=1,
                      hardware=HardwareModel.scaled_paper_cluster())
    node = cluster.node(0)
    rng = np.random.default_rng(3)

    # set up n_runs sorted runs on disk
    run_files = []
    all_keys = []
    for i in range(n_runs):
        keys = np.sort(rng.integers(0, 2**63, size=RUN_RECORDS,
                                    dtype=np.uint64))
        all_keys.append(keys)
        rf = RecordFile(node.disk, f"run.{i}", SCHEMA)
        rf.poke(0, SCHEMA.from_keys(keys))
        run_files.append(rf)
    out_file = RecordFile(node.disk, "merged", SCHEMA)

    def node_main(node, comm):
        prog = FGProgram(node.kernel, env={"node": node})
        merge_stage = Stage.source_driven("merge", None)
        verticals = []
        for i, rf in enumerate(run_files):
            def make_read(rf):
                def read(ctx, buf):
                    buf.put(rf.read(buf.round * VERTICAL_BLOCK,
                                    VERTICAL_BLOCK))
                    return buf
                return read

            stage = Stage.map(f"read{i}", make_read(rf), virtual=True,
                              virtual_group="read")
            pipeline = prog.add_pipeline(
                f"v{i}", [stage, merge_stage], nbuffers=2,
                buffer_bytes=VERTICAL_BLOCK * SCHEMA.record_bytes,
                rounds=RUN_RECORDS // VERTICAL_BLOCK)
            verticals.append(pipeline)

        def write(ctx, buf):
            out_file.write(buf.tags["start"], buf.view(SCHEMA.dtype))
            return buf

        horizontal = prog.add_pipeline(
            "out", [merge_stage, Stage.map("write", write)], nbuffers=4,
            buffer_bytes=HORIZONTAL_BLOCK * SCHEMA.record_bytes,
            rounds=None)

        def merge(ctx):
            merger = BlockMerger(SCHEMA, range(n_runs))
            head_buf = {}

            def refill():
                for i in sorted(merger.needs()):
                    if i in head_buf:
                        ctx.convey(head_buf.pop(i))
                    nxt = ctx.accept(verticals[i])
                    if nxt.is_caboose:
                        ctx.forward(nxt)
                        merger.finish_run(i)
                    else:
                        merger.feed(i, nxt.view(SCHEMA.dtype))
                        head_buf[i] = nxt

            refill()
            emitted = 0
            while not merger.exhausted:
                out = ctx.accept(horizontal)
                target = out.capacity // SCHEMA.record_bytes
                records = out.data.view(SCHEMA.dtype)
                filled = 0
                while filled < target and not merger.exhausted:
                    if not merger.ready:
                        refill()
                        continue
                    n = merger.merge_into(records, filled, target - filled)
                    node.compute_merge(n)
                    filled += n
                if filled:
                    out.size = filled * SCHEMA.record_bytes
                    out.tags["start"] = emitted
                    ctx.convey(out)
                    emitted += filled
            ctx.convey_caboose(horizontal)

        merge_stage.fn = merge
        prog.run()
        return prog.thread_count

    (threads,) = cluster.run(node_main)

    merged = out_file.read_all()["key"]
    expected = np.sort(np.concatenate(all_keys))
    assert np.array_equal(merged, expected), "merge produced wrong output"
    print(f"merged {n_runs} sorted runs x {RUN_RECORDS} records "
          f"-> {len(merged)} records, verified sorted")
    print(f"simulated time: {cluster.kernel.now() * 1e3:.2f} ms")
    print(f"FG threads used: {threads} "
          f"(virtual stages; a naive build would need ~{3 * n_runs + 4})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 64)
