"""Unit tests for record files on a simulated disk."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema


@pytest.fixture
def cluster():
    return Cluster(n_nodes=1, hardware=HardwareModel(
        disk_bandwidth=1e9, disk_seek=0.0))


def test_timed_write_read_roundtrip(cluster):
    schema = RecordSchema.paper_16()
    rf = RecordFile(cluster.node(0).disk, "f", schema)
    keys = np.arange(100, dtype=np.uint64)

    def main(node, comm):
        rf.write(0, schema.from_keys(keys))
        return rf.read(0, 100)

    (out,) = cluster.run(main)
    np.testing.assert_array_equal(out["key"], keys)


def test_positional_read_write(cluster):
    schema = RecordSchema(8)
    rf = RecordFile(cluster.node(0).disk, "f", schema)

    def main(node, comm):
        rf.write(0, schema.from_keys(np.zeros(10, dtype=np.uint64)))
        rf.write(4, schema.from_keys(np.array([7, 8], dtype=np.uint64)))
        return rf.read(3, 4)

    (out,) = cluster.run(main)
    np.testing.assert_array_equal(out["key"], [0, 7, 8, 0])


def test_append_returns_start_index(cluster):
    schema = RecordSchema(8)
    rf = RecordFile(cluster.node(0).disk, "f", schema)

    def main(node, comm):
        a = rf.append(schema.from_keys(np.array([1, 2], dtype=np.uint64)))
        b = rf.append(schema.from_keys(np.array([3], dtype=np.uint64)))
        return a, b, rf.n_records

    assert cluster.run(main) == [(0, 2, 3)]


def test_peek_poke_untimed(cluster):
    """peek/poke bypass the disk arm: no time passes, no bytes counted."""
    schema = RecordSchema.paper_16()
    rf = RecordFile(cluster.node(0).disk, "f", schema)
    rf.poke(0, schema.from_keys(np.arange(50, dtype=np.uint64)))
    assert cluster.kernel.now() == 0.0
    assert cluster.node(0).disk.bytes_written == 0
    out = rf.peek(10, 5)
    np.testing.assert_array_equal(out["key"], [10, 11, 12, 13, 14])
    assert rf.read_all()["key"][-1] == 49


def test_exists_and_delete(cluster):
    schema = RecordSchema(8)
    rf = RecordFile(cluster.node(0).disk, "f", schema)
    assert not rf.exists
    rf.poke(0, schema.empty(1))
    assert rf.exists
    assert rf.n_records == 1
    rf.delete()
    assert not rf.exists
