"""Unit tests for PDM striped files."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.errors import SortError
from repro.pdm.records import RecordSchema
from repro.pdm.striped import StripedFile


@pytest.fixture
def cluster():
    return Cluster(n_nodes=4, hardware=HardwareModel(
        disk_bandwidth=1e9, disk_seek=0.0))


def test_round_robin_geometry(cluster):
    schema = RecordSchema(8)
    sf = StripedFile(cluster, "out", schema, block_records=10)
    assert [sf.node_of_block(b) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert [sf.local_block(b) for b in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
    assert sf.locate(0) == (0, 0)
    assert sf.locate(10) == (1, 0)
    assert sf.locate(45) == (0, 15)  # block 4 -> node 0 local block 1, +5


def test_write_blocks_then_read_all_in_global_order(cluster):
    schema = RecordSchema(8)
    sf = StripedFile(cluster, "out", schema, block_records=5)
    n_blocks = 7

    def main(node, comm):
        # every node writes the blocks it owns
        for b in range(n_blocks):
            if sf.node_of_block(b) == comm.rank:
                keys = np.arange(b * 5, (b + 1) * 5, dtype=np.uint64)
                sf.write_block(b, schema.from_keys(keys))

    cluster.run(main)
    out = sf.read_all()
    np.testing.assert_array_equal(out["key"], np.arange(35, dtype=np.uint64))
    assert sf.total_records() == 35


def test_partial_block_write_with_offset(cluster):
    schema = RecordSchema(8)
    sf = StripedFile(cluster, "out", schema, block_records=4)

    def main(node, comm):
        if comm.rank == 0:
            sf.write_block(0, schema.from_keys(
                np.array([0, 1], dtype=np.uint64)))
            sf.write_block(0, schema.from_keys(
                np.array([2, 3], dtype=np.uint64)), offset_records=2)

    cluster.run(main)
    out = sf.read_all()
    np.testing.assert_array_equal(out["key"], [0, 1, 2, 3])


def test_block_overflow_rejected(cluster):
    schema = RecordSchema(8)
    sf = StripedFile(cluster, "out", schema, block_records=4)

    def main(node, comm):
        if comm.rank == 0:
            sf.write_block(0, schema.empty(3), offset_records=2)

    with pytest.raises(Exception) as exc_info:
        cluster.run(main)
    assert isinstance(exc_info.value.original, SortError)


def test_read_block_charges_owner_disk(cluster):
    schema = RecordSchema(8)
    sf = StripedFile(cluster, "out", schema, block_records=4)

    def main(node, comm):
        if comm.rank == 1:
            sf.write_block(1, schema.from_keys(
                np.array([9, 9, 9, 9], dtype=np.uint64)))
            sf.read_block(1)

    cluster.run(main)
    assert cluster.node(1).disk.bytes_written == 32
    assert cluster.node(1).disk.bytes_read == 32
    assert cluster.node(0).disk.bytes_total == 0


def test_bad_block_records_rejected(cluster):
    with pytest.raises(SortError):
        StripedFile(cluster, "out", RecordSchema(8), block_records=0)
