"""Unit tests for record schemas, including property-based roundtrips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SortError
from repro.pdm.records import RecordSchema


def test_paper_record_sizes():
    assert RecordSchema.paper_16().record_bytes == 16
    assert RecordSchema.paper_64().record_bytes == 64
    assert RecordSchema.paper_16().dtype.itemsize == 16
    assert RecordSchema.paper_64().dtype.itemsize == 64


def test_key_only_schema():
    schema = RecordSchema(8)
    recs = schema.from_keys(np.array([3, 1, 2], dtype=np.uint64))
    assert recs.dtype.names == ("key",)
    np.testing.assert_array_equal(recs["key"], [3, 1, 2])


def test_record_smaller_than_key_rejected():
    with pytest.raises(SortError):
        RecordSchema(4)


def test_from_keys_roundtrip_bytes():
    schema = RecordSchema.paper_16()
    keys = np.array([10, 7, 99], dtype=np.uint64)
    recs = schema.from_keys(keys)
    raw = schema.to_bytes(recs)
    assert raw.nbytes == 48
    back = schema.from_bytes(raw)
    np.testing.assert_array_equal(back["key"], keys)


def test_payload_tags_identify_original_record():
    """Payload stamps let us confirm whole records (not just keys) were
    permuted correctly."""
    for schema in (RecordSchema.paper_16(), RecordSchema.paper_64()):
        keys = np.array([5, 5, 123456789], dtype=np.uint64)
        recs = schema.from_keys(keys)
        tags = schema.payload_tags(recs)
        expected = keys ^ np.uint64(0x9E3779B97F4A7C15)
        np.testing.assert_array_equal(tags, expected)


def test_payload_tags_without_payload_rejected():
    with pytest.raises(SortError):
        RecordSchema(8).payload_tags(RecordSchema(8).empty(1))


def test_sort_is_stable_and_correct():
    schema = RecordSchema.paper_16()
    keys = np.array([5, 1, 5, 0], dtype=np.uint64)
    recs = schema.from_keys(keys)
    out = schema.sort(recs)
    np.testing.assert_array_equal(out["key"], [0, 1, 5, 5])
    assert schema.is_sorted(out)
    assert not schema.is_sorted(recs)


def test_is_sorted_edge_cases():
    schema = RecordSchema(8)
    assert schema.is_sorted(schema.empty(0))
    assert schema.is_sorted(schema.empty(1))


def test_from_bytes_rejects_ragged_length():
    schema = RecordSchema.paper_16()
    with pytest.raises(SortError):
        schema.from_bytes(np.zeros(17, dtype=np.uint8))


def test_nbytes_nrecords_inverse():
    schema = RecordSchema.paper_64()
    assert schema.nbytes(10) == 640
    assert schema.nrecords(640) == 10
    with pytest.raises(SortError):
        schema.nrecords(641)


def test_schema_equality_and_hash():
    assert RecordSchema(16) == RecordSchema.paper_16()
    assert RecordSchema(16) != RecordSchema(64)
    assert hash(RecordSchema(16)) == hash(RecordSchema.paper_16())


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                min_size=0, max_size=200),
       st.sampled_from([8, 16, 64, 100]))
def test_property_bytes_roundtrip_preserves_records(key_list, record_bytes):
    schema = RecordSchema(record_bytes)
    keys = np.array(key_list, dtype=np.uint64)
    recs = schema.from_keys(keys)
    back = schema.from_bytes(schema.to_bytes(recs).copy())
    np.testing.assert_array_equal(back, recs)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                min_size=0, max_size=200))
def test_property_sort_is_permutation_and_ordered(key_list):
    schema = RecordSchema.paper_16()
    keys = np.array(key_list, dtype=np.uint64)
    recs = schema.from_keys(keys)
    out = schema.sort(recs)
    assert schema.is_sorted(out)
    np.testing.assert_array_equal(np.sort(out["key"]), np.sort(keys))
    # payloads still match their keys after sorting
    if len(keys):
        np.testing.assert_array_equal(
            schema.payload_tags(out),
            out["key"] ^ np.uint64(0x9E3779B97F4A7C15))
