"""Property tests for the PDM striped-file layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, HardwareModel
from repro.pdm.records import RecordSchema
from repro.pdm.striped import StripedFile

SCHEMA = RecordSchema(8)


def make_striped(n_nodes, block_records):
    cluster = Cluster(n_nodes=n_nodes, hardware=HardwareModel(
        disk_bandwidth=1e12, disk_seek=0.0))
    return cluster, StripedFile(cluster, "f", SCHEMA, block_records)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=5),     # nodes
       st.integers(min_value=1, max_value=7),     # block size
       st.integers(min_value=1, max_value=120))   # total records
def test_property_block_writes_reassemble_global_order(n_nodes, block,
                                                       total):
    cluster, striped = make_striped(n_nodes, block)
    records = SCHEMA.from_keys(np.arange(total, dtype=np.uint64))

    def main(node, comm):
        n_blocks = -(-total // block)
        for b in range(n_blocks):
            if striped.node_of_block(b) == comm.rank:
                lo, hi = b * block, min((b + 1) * block, total)
                striped.write_block(b, records[lo:hi])

    cluster.run(main)
    out = striped.read_all()
    np.testing.assert_array_equal(out["key"],
                                  np.arange(total, dtype=np.uint64))


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=9),
       st.integers(min_value=0, max_value=300))
def test_property_locate_is_consistent_with_geometry(n_nodes, block,
                                                     position):
    _, striped = make_striped(n_nodes, block)
    node, local = striped.locate(position)
    gb = position // block
    assert node == gb % n_nodes
    assert local == (gb // n_nodes) * block + position % block
    # locate is injective per node: positions in one block map to
    # consecutive local indices
    if position % block < block - 1:
        node2, local2 = striped.locate(position + 1)
        if (position + 1) // block == gb:
            assert node2 == node and local2 == local + 1


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=2, max_value=6),
       st.data())
def test_property_partial_writes_compose(n_nodes, block, data):
    """Writing a block in arbitrary (offset, length) pieces equals one
    whole-block write."""
    cluster, striped = make_striped(n_nodes, block)
    keys = data.draw(st.lists(
        st.integers(min_value=0, max_value=2**32), min_size=block,
        max_size=block))
    records = SCHEMA.from_keys(np.array(keys, dtype=np.uint64))
    # random partition of [0, block) into contiguous pieces
    n_cuts = data.draw(st.integers(min_value=0, max_value=block - 1))
    cuts = sorted(data.draw(st.lists(
        st.integers(min_value=1, max_value=block - 1),
        min_size=n_cuts, max_size=n_cuts, unique=True)))
    bounds = [0] + cuts + [block]

    def main(node, comm):
        if comm.rank == striped.node_of_block(0):
            for lo, hi in zip(bounds, bounds[1:]):
                striped.write_block(0, records[lo:hi], offset_records=lo)

    cluster.run(main)
    np.testing.assert_array_equal(
        striped.locals[striped.node_of_block(0)].peek(0, block), records)
