"""Fingerprint properties over the shared IR.

Two programs that can behave differently must fingerprint differently —
including the PR-5 dynamic structure (pools grown or retired mid-run)
and the planner's rewrites (fusion, applied plan).  And the pipeline
lint -> plan -> lint must be a fixed point: the planner never produces a
program the linter would then complain about.
"""

import numpy as np

from repro.check import lint_program
from repro.core import FGProgram, Stage
from repro.plan import fuse_program
from repro.prov import stage_graph_fingerprint
from repro.sim import VirtualTimeKernel


def ok_map(ctx, buf):
    return buf


def build(*, nbuffers=3, channel_capacity=None, replicas=None,
          rounds=4, extra=False):
    prog = FGProgram(VirtualTimeKernel(), name="fp-prop")

    def fill(ctx, buf):
        buf.put(np.zeros(4, dtype=np.uint8))
        return buf

    stages = [Stage.map("fill", fill), Stage.map("work", ok_map),
              Stage.map("sink", ok_map)]
    if extra:
        stages.append(Stage.map("tail", ok_map))
    prog.add_pipeline("p", stages, nbuffers=nbuffers, buffer_bytes=16,
                      rounds=rounds, channel_capacity=channel_capacity,
                      replicas=replicas)
    return prog


def test_identical_constructions_fingerprint_identically():
    assert stage_graph_fingerprint(build()) == stage_graph_fingerprint(
        build())


def test_any_single_geometry_change_changes_the_fingerprint():
    base = stage_graph_fingerprint(build())
    variants = [
        build(nbuffers=4),
        build(channel_capacity=2),
        build(replicas={"work": 2}),
        build(rounds=5),
        build(extra=True),
    ]
    prints = [stage_graph_fingerprint(v) for v in variants]
    assert base not in prints
    assert len(set(prints)) == len(prints)  # all pairwise distinct


def test_replica_count_is_part_of_the_identity():
    assert (stage_graph_fingerprint(build(replicas={"work": 2}))
            != stage_graph_fingerprint(build(replicas={"work": 3})))


def _run_growing(nbuffers, grow):
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel, name="fp-prop")

    def fill(ctx, buf):
        kernel.sleep(0.01)
        buf.put(np.zeros(4, dtype=np.uint8))
        return buf

    prog.add_pipeline("p", [Stage.map("fill", fill),
                            Stage.map("sink", ok_map)],
                      nbuffers=nbuffers, buffer_bytes=16, rounds=8)

    def grower():
        kernel.sleep(0.02)
        if grow:
            prog.add_buffers(prog.pipelines[0], grow)

    kernel.spawn(prog.run, name="driver")
    kernel.spawn(grower, name="grower")
    kernel.run()
    return prog


def test_grown_pool_is_not_identical_to_a_declared_one():
    declared = _run_growing(nbuffers=4, grow=0)
    grown = _run_growing(nbuffers=2, grow=2)
    assert declared.pipelines[0].nbuffers == grown.pipelines[0].nbuffers
    assert (stage_graph_fingerprint(declared)
            != stage_graph_fingerprint(grown))


def test_growing_changes_the_fingerprint_of_the_same_declaration():
    plain = _run_growing(nbuffers=2, grow=0)
    grown = _run_growing(nbuffers=2, grow=2)
    assert stage_graph_fingerprint(plain) != stage_graph_fingerprint(grown)


def test_lint_plan_lint_is_a_fixed_point():
    prog = build()
    assert list(lint_program(prog)) == []
    fused = fuse_program(prog)
    assert fused  # the three cheap maps collapse
    assert list(lint_program(prog)) == []
    # and planning again neither rewrites nor changes the identity
    after = stage_graph_fingerprint(prog)
    assert fuse_program(prog) == []
    assert stage_graph_fingerprint(prog) == after
