"""Stage-fusion tests: eligibility, the resource-class guard,
idempotence, and runtime equivalence of fused vs. unfused programs."""

import numpy as np

from repro.core import FGProgram, Stage
from repro.plan import fusable_runs, fuse_program
from repro.plan.fuse import resource_classes
from repro.prov import stage_graph_fingerprint
from repro.sim import VirtualTimeKernel


def fresh_prog(**kwargs):
    return FGProgram(VirtualTimeKernel(), name="fusee", **kwargs)


def cheap(ctx, buf):
    return buf


# -- resource-class detection ------------------------------------------------

def test_resource_classes_of_pure_transform_is_empty():
    def tag(ctx, buf):
        buf.tags["seen"] = True
        return buf

    assert resource_classes(tag) == frozenset()


def test_resource_classes_sees_disk_net_cpu_names():
    def reader(ctx, buf):
        ctx.disk.read(buf)
        return buf

    def shuffler(ctx, buf):
        ctx.net.alltoall(buf)
        return buf

    def sorter(ctx, buf):
        ctx.compute_sort(buf)
        return buf

    assert resource_classes(reader) == frozenset({"disk"})
    assert resource_classes(shuffler) == frozenset({"net"})
    assert resource_classes(sorter) == frozenset({"cpu"})


def test_resource_classes_follows_closures():
    def helper(ctx, buf):
        ctx.disk.write(buf)

    def stage_fn(ctx, buf):
        helper(ctx, buf)
        return buf

    assert "disk" in resource_classes(stage_fn)


# -- eligibility -------------------------------------------------------------

def test_adjacent_cheap_maps_form_one_run():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map(n, cheap) for n in "abc"],
                      nbuffers=3, buffer_bytes=8, rounds=2)
    assert fusable_runs(prog) == [("p", ("a", "b", "c"))]


def test_mixed_resource_classes_do_not_fuse():
    """A disk stage next to a CPU stage must stay separate: fusing them
    serializes the overlap the pipeline exists to provide."""
    def reader(ctx, buf):
        ctx.disk.read(buf)
        return buf

    def sorter(ctx, buf):
        ctx.compute_sort(buf)
        return buf

    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("read", reader),
                            Stage.map("sort", sorter)],
                      nbuffers=2, buffer_bytes=8, rounds=2)
    assert fusable_runs(prog) == []


def test_same_resource_class_fuses():
    def reader(ctx, buf):
        ctx.disk.read(buf)
        return buf

    def writer(ctx, buf):
        ctx.disk.write(buf)
        return buf

    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("read", reader),
                            Stage.map("write", writer)],
                      nbuffers=2, buffer_bytes=8, rounds=2)
    assert fusable_runs(prog) == [("p", ("read", "write"))]


def test_pure_transform_fuses_into_a_heavy_neighbour():
    def reader(ctx, buf):
        ctx.disk.read(buf)
        return buf

    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("read", reader),
                            Stage.map("tag", cheap)],
                      nbuffers=2, buffer_bytes=8, rounds=2)
    assert fusable_runs(prog) == [("p", ("read", "tag"))]


def test_full_virtual_replicated_and_shared_stages_break_runs():
    prog = fresh_prog()
    shared = Stage.map("shared", cheap)
    prog.add_pipeline("p", [Stage.map("a", cheap),
                            Stage.source_driven("full", lambda ctx: None),
                            Stage.map("b", cheap),
                            Stage.map("v", cheap, virtual=True),
                            Stage.map("c", cheap),
                            Stage.map("r", cheap),
                            Stage.map("d", cheap),
                            shared],
                      nbuffers=8, buffer_bytes=8, rounds=2,
                      replicas={"r": 2})
    prog.add_pipeline("q", [shared], nbuffers=1, buffer_bytes=8, rounds=2)
    # every breaker splits the chain into runs of length 1 -> nothing
    # reaches the >= 2 threshold except none
    assert fusable_runs(prog) == []


# -- fuse_program ------------------------------------------------------------

def test_fuse_program_merges_names_and_provenance():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map(n, cheap) for n in "abc"],
                      nbuffers=3, buffer_bytes=8, rounds=2)
    fused = fuse_program(prog)
    assert fused == [("p", ("a", "b", "c"))]
    (stage,) = prog.pipelines[0].stages
    assert stage.name == "a+b+c"
    assert stage.fused_from == ("a", "b", "c")


def test_fuse_program_is_idempotent():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map(n, cheap) for n in "ab"],
                      nbuffers=2, buffer_bytes=8, rounds=2)
    assert fuse_program(prog)
    before = stage_graph_fingerprint(prog)
    assert fuse_program(prog) == []
    assert stage_graph_fingerprint(prog) == before


def test_fusion_changes_the_structural_fingerprint():
    def build():
        prog = fresh_prog()
        prog.add_pipeline("p", [Stage.map(n, cheap) for n in "ab"],
                          nbuffers=2, buffer_bytes=8, rounds=2)
        return prog

    unfused = build()
    fused = build()
    fuse_program(fused)
    assert (stage_graph_fingerprint(unfused)
            != stage_graph_fingerprint(fused))


def _run_collecting(prog, collected):
    kernel = prog.kernel
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    return list(collected)


def _transform_program(*, fuse):
    """[fill -> inc -> dbl -> collect], all cheap maps -> one fused stage."""
    prog = fresh_prog()
    out = []

    def fill(ctx, buf):
        buf.put(np.full(4, buf.round, dtype=np.int64))
        return buf

    def inc(ctx, buf):
        buf.view(np.int64)[:] += 1
        return buf

    def dbl(ctx, buf):
        buf.view(np.int64)[:] *= 2
        return buf

    def collect(ctx, buf):
        out.append(int(buf.view(np.int64)[0]))
        return buf

    prog.add_pipeline("p", [Stage.map("fill", fill), Stage.map("inc", inc),
                            Stage.map("dbl", dbl),
                            Stage.map("collect", collect)],
                      nbuffers=4, buffer_bytes=32, rounds=5)
    if fuse:
        assert fuse_program(prog)
    return prog, out


def test_fused_program_computes_the_same_results():
    plain_prog, plain_out = _transform_program(fuse=False)
    fused_prog, fused_out = _transform_program(fuse=True)
    assert _run_collecting(plain_prog, plain_out) == [
        (r + 1) * 2 for r in range(5)]
    assert (_run_collecting(fused_prog, fused_out)
            == [(r + 1) * 2 for r in range(5)])
    assert len(fused_prog.pipelines[0].stages) == 1


def test_fused_composition_preserves_drop_semantics():
    """A stage returning None consumes the buffer; the fused composition
    must short-circuit instead of calling the next fn with None."""
    def build(fuse):
        prog = fresh_prog()
        out = []

        def fill(ctx, buf):
            buf.put(np.full(2, buf.round, dtype=np.int64))
            return buf

        def drop_odd(ctx, buf):
            return buf if buf.round % 2 == 0 else None

        def collect(ctx, buf):
            out.append(buf.round)
            return buf

        prog.add_pipeline("p", [Stage.map("fill", fill),
                                Stage.map("drop", drop_odd),
                                Stage.map("collect", collect)],
                          nbuffers=3, buffer_bytes=16, rounds=6)
        if fuse:
            assert fuse_program(prog)
        return prog, out

    for fuse in (False, True):
        prog, out = build(fuse)
        assert _run_collecting(prog, out) == [0, 2, 4]
