"""Plan application tests: serialization round-trips, the run_sort(plan=)
path, warm-started tuning, and byte-exact replay of planned runs."""

import pytest

from repro.errors import ReproError
from repro.pdm.records import RecordSchema
from repro.plan import Plan, plan_sort


def test_plan_round_trips_through_json():
    plan = plan_sort("dsort", 4, 4096)
    back = Plan.from_json(plan.to_json())
    assert back.config == plan.config
    assert back.digest() == plan.digest()
    assert (back.sorter, back.n_nodes, back.n_per_node) == (
        plan.sorter, plan.n_nodes, plan.n_per_node)
    assert [d.target for d in back.decisions] == [
        d.target for d in plan.decisions]


def test_tampered_plan_json_is_rejected():
    doc = plan_sort("dsort", 4, 4096).to_json()
    doc["config"]["block_records"] = 64  # digest no longer matches
    with pytest.raises(ReproError):
        Plan.from_json(doc)


def test_run_sort_applies_a_compiled_plan():
    from repro.bench.harness import run_sort

    plan = plan_sort("dsort", 2, 1024)
    run = run_sort("dsort", "uniform", RecordSchema.paper_16(),
                   n_nodes=2, n_per_node=1024, seed=0, plan=plan)
    assert run.verified
    # the planned geometry actually reached the cluster: the run used
    # the plan's block size, not the hand-tuned default
    baseline = run_sort("dsort", "uniform", RecordSchema.paper_16(),
                        n_nodes=2, n_per_node=1024, seed=0)
    assert baseline.verified
    assert run.total_time <= baseline.total_time


def test_run_sort_plan_true_compiles_on_the_spot():
    from repro.bench.harness import run_sort

    run = run_sort("csort", "uniform", RecordSchema.paper_16(),
                   n_nodes=2, n_per_node=1024, seed=0, plan=True)
    assert run.verified


def test_explicit_tune_overrides_win_over_the_plan():
    from repro.bench.harness import run_sort

    plan = plan_sort("dsort", 2, 1024)
    override = {"block_records": 128}
    run = run_sort("dsort", "uniform", RecordSchema.paper_16(),
                   n_nodes=2, n_per_node=1024, seed=0, plan=plan,
                   tune=override)
    assert run.verified


def test_mismatched_plan_is_rejected():
    from repro.bench.harness import run_sort

    plan = plan_sort("dsort", 4, 4096)
    with pytest.raises(ReproError, match="plan"):
        run_sort("dsort", "uniform", RecordSchema.paper_16(),
                 n_nodes=2, n_per_node=1024, seed=0, plan=plan)
    with pytest.raises(ReproError, match="plan"):
        run_sort("csort", "uniform", RecordSchema.paper_16(),
                 n_nodes=4, n_per_node=4096, seed=0, plan=plan)


def test_planned_run_replays_byte_exactly():
    from repro.bench.harness import run_sort
    from repro.prov import replay

    plan = plan_sort("dsort", 2, 1024)
    run = run_sort("dsort", "uniform", RecordSchema.paper_16(),
                   n_nodes=2, n_per_node=1024, seed=0, plan=plan,
                   provenance=True)
    record = run.provenance
    assert record is not None
    assert record.args["plan"]["digest"] == plan.digest()
    result = replay(record)
    assert result.ok, result.describe()


def test_applied_plan_changes_the_stage_graph_identity():
    from repro.bench.harness import run_sort

    schema = RecordSchema.paper_16()
    plain = run_sort("dsort", "uniform", schema, n_nodes=2,
                     n_per_node=1024, seed=0, provenance=True,
                     tune=plan_sort("dsort", 2, 1024).config)
    planned = run_sort("dsort", "uniform", schema, n_nodes=2,
                       n_per_node=1024, seed=0, provenance=True,
                       plan=plan_sort("dsort", 2, 1024))
    # same knob values, but one run carries an applied plan: the
    # provenance identity must distinguish them
    assert plain.provenance is not None and planned.provenance is not None
    assert plain.provenance.stage_graphs != planned.provenance.stage_graphs


def test_warm_started_hill_climb_is_no_worse_and_no_slower():
    from repro.tune import tune_sort

    cold = tune_sort("dsort", n_nodes=2, n_per_node=512, seed=0)
    warm = tune_sort("dsort", n_nodes=2, n_per_node=512, seed=0,
                     warm_start=True)
    assert warm.best_score <= cold.best_score
    assert warm.evaluations <= cold.evaluations
