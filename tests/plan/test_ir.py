"""Shared graph IR tests: the one walk linter, planner, and prov use.

The IR's two load-bearing models are the replica-expanded depth (FG101's
input) and the edge-wise channel capacities (FG108's input); both are
pinned here directly, independent of any linter rule.
"""

import pytest

from repro.core import FGProgram, Stage
from repro.plan import ProgramGraph
from repro.sim import VirtualTimeKernel


def ok_map(ctx, buf):
    return buf


def fresh_prog(**kwargs):
    return FGProgram(VirtualTimeKernel(), name="ir-test", **kwargs)


def test_from_program_captures_declared_structure():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("a", ok_map),
                            Stage.source_driven("b", lambda ctx: None)],
                      nbuffers=3, buffer_bytes=64, rounds=5,
                      channel_capacity=2)
    graph = ProgramGraph.from_program(prog)
    assert graph.name == "ir-test"
    (p,) = graph.pipelines
    assert [n.name for n in p.stages] == ["a", "b"]
    assert [n.style for n in p.stages] == ["map", "full"]
    assert (p.nbuffers, p.buffer_bytes, p.rounds) == (3, 64, 5)
    assert p.channel_capacity == 2
    assert (p.pool_grown, p.pool_retired) == (0, 0)


def test_effective_depth_expands_replicas():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("a", ok_map),
                            Stage.map("b", ok_map),
                            Stage.map("c", ok_map)],
                      nbuffers=6, buffer_bytes=8, rounds=4,
                      replicas={"b": 3})
    (p,) = ProgramGraph.from_program(prog).pipelines
    # 3 declared stages, but b runs as 3 copies + a sequencer
    assert p.effective_depth == 6
    node = p.stages[1]
    assert node.replicated and node.replica_count == 3


def test_effective_depth_without_replicas_is_stage_count():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map(f"s{i}", ok_map) for i in range(4)],
                      nbuffers=4, buffer_bytes=8, rounds=1)
    (p,) = ProgramGraph.from_program(prog).pipelines
    assert p.effective_depth == 4


def _chain_ir(*, channel_capacity, replicas=None, virtual_mid=False,
              nbuffers=4):
    prog = fresh_prog()
    mid = (Stage.map("m", ok_map, virtual=True) if virtual_mid
           else Stage.map("m", ok_map))
    prog.add_pipeline("p", [Stage.map("s", ok_map), mid,
                            Stage.map("t", ok_map)],
                      nbuffers=nbuffers, buffer_bytes=8, rounds=4,
                      channel_capacity=channel_capacity,
                      replicas=replicas)
    (p,) = ProgramGraph.from_program(prog).pipelines
    return p


def test_edge_capacity_bounded_chain():
    p = _chain_ir(channel_capacity=1)
    assert p.edge_capacity(1) == 1
    assert p.edge_capacity(2) == 1
    # two bounded hops: 1 parked per edge + 1 held by the middle stage
    assert p.chain_parking(0, 2) == 3


def test_chain_parking_rendezvous_edges_park_nothing():
    p = _chain_ir(channel_capacity=0)
    # cap-0 edges park zero; only the middle stage's held buffer counts
    assert p.chain_parking(0, 2) == 1
    assert p.chain_parking(0, 1) == 0


def test_chain_parking_unbounded_pipeline_is_none():
    p = _chain_ir(channel_capacity=None)
    assert p.edge_capacity(1) is None
    assert p.chain_parking(0, 2) is None


def test_edge_behind_replicated_stage_is_unbounded():
    p = _chain_ir(channel_capacity=1, replicas={"m": 2})
    assert p.edge_capacity(1) == 1  # into the replicas: still bounded
    assert p.edge_capacity(2) is None  # reorder channel to the sequencer
    assert p.chain_parking(0, 2) is None


def test_edge_into_virtual_stage_is_unbounded():
    p = _chain_ir(channel_capacity=1, virtual_mid=True)
    assert p.edge_capacity(1) is None  # the group's shared queue
    assert p.chain_parking(0, 2) is None


def test_index_of_uses_identity():
    prog = fresh_prog()
    a, b = Stage.map("x", ok_map), Stage.map("x", ok_map)
    prog.add_pipeline("p", [a, b], nbuffers=2, buffer_bytes=8, rounds=1)
    (p,) = ProgramGraph.from_program(prog).pipelines
    assert p.index_of(a) == 0
    assert p.index_of(b) == 1
    with pytest.raises(ValueError):
        p.index_of(Stage.map("x", ok_map))


def test_intersections_report_shared_stages_in_order():
    prog = fresh_prog()
    shared = Stage.source_driven("shared", lambda ctx: None)
    only_p = Stage.map("only_p", ok_map)
    prog.add_pipeline("p", [only_p, shared], nbuffers=2, buffer_bytes=8,
                      rounds=1)
    prog.add_pipeline("q", [shared], nbuffers=2, buffer_bytes=8, rounds=1)
    graph = ProgramGraph.from_program(prog)
    ((stage, pipes),) = graph.intersections()
    assert stage is shared
    assert [p.name for p in pipes] == ["p", "q"]
    assert graph.canonical()["intersections"] == [["shared", ["p", "q"]]]


def test_canonical_covers_every_structural_axis():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("a", ok_map),
                            Stage.map("b", ok_map)],
                      nbuffers=2, buffer_bytes=16, rounds=3,
                      replicas={"b": 2})
    doc = ProgramGraph.from_program(prog).canonical()
    assert set(doc) == {"name", "pipelines", "intersections", "plan"}
    assert doc["plan"] is None
    (p,) = doc["pipelines"]
    assert set(p) == {"name", "stages", "nbuffers", "buffer_bytes",
                      "rounds", "aux_buffers", "channel_capacity",
                      "pool_grown", "pool_retired"}
    assert p["stages"][1] == {"name": "b", "style": "map", "replicas": 2,
                              "parallel_safety": "pure"}


def test_fingerprint_is_deterministic_across_constructions():
    def build():
        prog = fresh_prog()
        prog.add_pipeline("p", [Stage.map("a", ok_map)],
                          nbuffers=2, buffer_bytes=8, rounds=1)
        return ProgramGraph.from_program(prog).fingerprint()

    assert build() == build()
