"""Geometry-inference tests: the planner must derive the tuner's winners
from the hardware cost model alone, and share its candidate ladders with
the tuner's search spaces by construction."""

import pytest

from repro.errors import ReproError
from repro.plan import (
    csort_s_candidates,
    dsort_block_candidates,
    infer_pool_size,
    plan_sort,
)
from repro.plan.geometry import RESOURCE_CLASSES


def test_dsort_plan_matches_the_tuned_optimum():
    plan = plan_sort("dsort", 4, 4096)
    assert plan.config == {"block_records": 2048, "nbuffers": 4,
                           "sort_replicas": 1}


def test_csort_plan_matches_the_tuned_optimum():
    plan = plan_sort("csort", 4, 4096)
    assert plan.config == {"s_override": 8, "nbuffers": 4,
                           "sort_replicas": 1}


def test_planner_and_tuner_share_candidate_ladders():
    from repro.tune.sorters import csort_space, dsort_space

    d_axis = {a.name: a for a in dsort_space(4, 4096).axes}["block_records"]
    assert tuple(d_axis.values) == tuple(dsort_block_candidates(4, 4096))
    c_axis = {a.name: a for a in csort_space(4, 4096).axes}["s_override"]
    assert tuple(c_axis.values) == tuple(csort_s_candidates(4, 4096))


def test_dsort_candidates_are_pow2_plus_default():
    cands = dsort_block_candidates(4, 4096)
    assert list(cands) == sorted(set(cands))
    assert 4096 in cands  # the full per-node input
    assert all(c & (c - 1) == 0 for c in cands)  # pow2 ladder + default


def test_csort_candidates_are_legal_column_counts():
    n_nodes, n_per_node = 4, 4096
    n_total = n_nodes * n_per_node
    for s in csort_s_candidates(n_nodes, n_per_node):
        assert s % n_nodes == 0
        r = n_total // s
        assert r * s == n_total  # s divides the input exactly
        assert 2 * (s - 1) ** 2 <= r  # columnsort's height requirement


def test_infer_pool_size_caps_at_resource_classes():
    # one buffer per overlappable resource class + one reserve, never
    # more: stages beyond the third share a class with an earlier one
    assert infer_pool_size(1) == 2
    assert infer_pool_size(2) == 3
    assert infer_pool_size(3) == 4
    assert infer_pool_size(6) == RESOURCE_CLASSES + 1 == 4


def test_every_decision_carries_a_reason():
    for sorter in ("dsort", "csort"):
        plan = plan_sort(sorter, 4, 4096)
        assert plan.decisions
        targets = {d.target for d in plan.decisions}
        assert "nbuffers" in targets
        assert "sort_replicas" in targets
        assert "channel_capacity" in targets
        for d in plan.decisions:
            assert d.reason and isinstance(d.reason, str)


def test_explain_renders_config_and_reasons():
    plan = plan_sort("dsort", 4, 4096)
    text = plan.explain()
    assert "block_records = 2048" in text
    assert "nbuffers = 4" in text
    assert plan.digest()[:16] in text


def test_unknown_sorter_raises():
    with pytest.raises(ReproError):
        plan_sort("qsort", 4, 4096)


def test_plans_scale_with_problem_size():
    small = plan_sort("dsort", 2, 512)
    large = plan_sort("dsort", 4, 4096)
    assert small.config["block_records"] <= large.config["block_records"]
    assert small.digest() != large.digest()
