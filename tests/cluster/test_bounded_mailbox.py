"""Tests for bounded mailboxes: backpressure, fairness, and the deadlock
modes that the unbounded (eager) default hides.

Real MPI implementations buffer only so much: large messages use a
rendezvous protocol and block the sender until the receiver is ready.
Bounded mailboxes model that — and they are where the paper's warnings
about coupled send/receive stages ("extensive bookkeeping") become
observable failures instead of hand-waving.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.errors import ConfigError, DeadlockError
from repro.sorting.dsort import DsortConfig, run_dsort
from repro.sorting.verify import verify_striped_output
from repro.pdm.records import RecordSchema
from repro.workloads.generator import generate_input


def make_cluster(n, capacity):
    hw = HardwareModel(net_bandwidth=100.0, net_latency=0.0,
                       disk_bandwidth=1e9, disk_seek=0.0,
                       copy_cost_per_byte=0.0)
    return Cluster(n_nodes=n, hardware=hw,
                   mailbox_capacity_bytes=capacity)


def test_sender_blocks_until_receiver_drains():
    cluster = make_cluster(2, capacity=100)
    times = {}

    def main(node, comm):
        if comm.rank == 0:
            comm.send(1, b"x" * 100, tag=0)   # fills the mailbox
            comm.send(1, b"y" * 100, tag=0)   # must wait for the drain
            times["second_send_done"] = node.kernel.now()
        else:
            node.kernel.sleep(50.0)
            comm.recv(source=0)
            comm.recv(source=0)

    cluster.run(main)
    # second send could start only after the t=50 drain
    assert times["second_send_done"] >= 50.0


def test_oversize_message_passes_when_buffer_empty():
    cluster = make_cluster(2, capacity=10)

    def main(node, comm):
        if comm.rank == 0:
            comm.send(1, b"z" * 1000, tag=0)  # bigger than the whole cap
        else:
            src, payload = comm.recv(source=0)
            return len(payload)

    assert cluster.run(main)[1] == 1000


def test_zero_byte_end_markers_never_block():
    cluster = make_cluster(2, capacity=50)

    def main(node, comm):
        if comm.rank == 0:
            comm.send(1, b"a" * 50, tag=0)
            for _ in range(10):
                comm.send(1, b"", tag=0)  # all fit: zero bytes
            return None
        results = [comm.recv(source=0) for _ in range(11)]
        return len(results)

    assert cluster.run(main)[1] == 11


def test_fifo_fair_reservations():
    """A big reservation at the head is not starved by small ones."""
    cluster = make_cluster(3, capacity=100)
    order = []

    def main(node, comm):
        if comm.rank == 0:
            comm.send(2, b"f" * 100, tag=0)        # fill
            node.kernel.sleep(1.0)
            comm.send(2, b"B" * 90, tag=1)         # big, queued first
            order.append(("big", node.kernel.now()))
        elif comm.rank == 1:
            node.kernel.sleep(3.0)  # strictly after the big one queues
            # 90+20 > 100, so the small message must wait behind the big
            # reservation AND its consumption
            comm.send(2, b"s" * 20, tag=2)
            order.append(("small", node.kernel.now()))
        else:
            node.kernel.sleep(10.0)
            comm.recv(source=0, tag=0)   # frees room for the big message
            comm.recv(source=0, tag=1)   # only now can the small one fit
            comm.recv(source=1, tag=2)

    cluster.run(main)
    assert order[0][0] == "big"


def test_loopback_is_exempt():
    cluster = make_cluster(1, capacity=10)

    def main(node, comm):
        for _ in range(5):
            comm.send(0, b"m" * 100, tag=0)  # way over capacity, loopback
        return [comm.recv(source=0)[1] for _ in range(5)]

    out = cluster.run(main)[0]
    assert len(out) == 5


def test_coupled_send_receive_deadlocks_and_is_diagnosed():
    """Two nodes that send a large burst before receiving deadlock under
    bounded mailboxes — and the kernel names the culprits.  This is the
    failure mode FG's disjoint pipelines exist to prevent."""
    cluster = make_cluster(2, capacity=100)

    def main(node, comm):
        peer = 1 - comm.rank
        for _ in range(3):                  # 300 B burst into a 100 B cap
            comm.send(peer, b"x" * 100, tag=0)
        for _ in range(3):
            comm.recv(source=peer)

    with pytest.raises(DeadlockError) as exc_info:
        cluster.run(main)
    assert "reserve" in str(exc_info.value)


def test_disjoint_pipelines_survive_where_coupling_deadlocks():
    """The same traffic pattern is fine when sends and receives live in
    independent threads (FG's disjoint-pipeline argument, distilled)."""
    cluster = make_cluster(2, capacity=100)
    received = {0: 0, 1: 0}

    def main(node, comm):
        peer = 1 - comm.rank

        def sender():
            for _ in range(3):
                comm.send(peer, b"x" * 100, tag=0)

        def receiver():
            for _ in range(3):
                comm.recv(source=peer)
                received[comm.rank] += 1

        s = node.kernel.spawn(sender, name=f"send@{comm.rank}")
        r = node.kernel.spawn(receiver, name=f"recv@{comm.rank}")
        s.join()
        r.join()

    cluster.run(main)
    assert received == {0: 3, 1: 3}


def test_dsort_correct_under_bounded_mailboxes():
    """dsort's disjoint send/receive pipelines drain continuously, so it
    completes (and stays correct) even with tight message buffers."""
    schema = RecordSchema.paper_16()
    hw = HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                       disk_bandwidth=1e9, disk_seek=1e-5)
    config = DsortConfig(block_records=128, vertical_block_records=64,
                         out_block_records=128, oversample=8)
    # capacity of ~4 blocks of records
    cluster = Cluster(n_nodes=4, hardware=hw,
                      mailbox_capacity_bytes=128 * 16 * 4)
    manifest = generate_input(cluster, schema, 2000, "uniform", seed=2)
    cluster.run(run_dsort, schema, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)


def test_invalid_capacity_rejected():
    # validated up front by the Cluster constructor now, with the
    # deadlock consequence spelled out in the message
    with pytest.raises(ConfigError, match="mailbox_capacity_bytes"):
        make_cluster(2, capacity=0)
