"""Unit tests for the network transport: timing, contention, matching."""

import numpy as np
import pytest

from repro.cluster.hardware import HardwareModel
from repro.cluster.network import Network
from repro.sim import VirtualTimeKernel


def make_network(n_nodes=2, bandwidth=100.0, latency=0.5):
    kernel = VirtualTimeKernel()
    hw = HardwareModel(net_bandwidth=bandwidth, net_latency=latency,
                       copy_cost_per_byte=0.0)
    return kernel, Network(kernel, hw, n_nodes)


def test_send_recv_payload_and_timing():
    kernel, net = make_network(bandwidth=100.0, latency=0.5)
    out = {}

    def sender():
        net.send(0, 1, np.arange(100, dtype=np.uint8), tag=7, nbytes=100)
        out["send_done"] = kernel.now()

    def receiver():
        msg = net.recv(1, source=0, tag=7)
        out["recv_done"] = kernel.now()
        out["payload"] = msg.payload

    kernel.spawn(sender)
    kernel.spawn(receiver)
    kernel.run()
    # tx: 100/100 = 1.0; latency 0.5; rx: 1.0 -> receiver done at 2.5
    assert out["send_done"] == pytest.approx(1.0)
    assert out["recv_done"] == pytest.approx(2.5)
    np.testing.assert_array_equal(out["payload"],
                                  np.arange(100, dtype=np.uint8))


def test_sender_nic_serializes_multiple_sends():
    kernel, net = make_network(n_nodes=3, bandwidth=100.0, latency=0.0)
    out = {}

    def sender():
        net.send(0, 1, b"x" * 100, tag=0, nbytes=100)
        net.send(0, 2, b"x" * 100, tag=0, nbytes=100)
        out["done"] = kernel.now()

    def receiver(rank):
        net.recv(rank, source=0)

    kernel.spawn(sender)
    kernel.spawn(receiver, 1)
    kernel.spawn(receiver, 2)
    kernel.run()
    assert out["done"] == pytest.approx(2.0)


def test_receiver_nic_is_bottleneck_for_fan_in():
    """Three senders target node 0: receive side serializes (the dsort
    unbalanced-communication hot spot)."""
    kernel, net = make_network(n_nodes=4, bandwidth=100.0, latency=0.0)
    out = {}

    def sender(rank):
        net.send(rank, 0, b"x" * 100, tag=0, nbytes=100)

    def receiver():
        for _ in range(3):
            net.recv(0)
        out["done"] = kernel.now()

    for r in (1, 2, 3):
        kernel.spawn(sender, r)
    kernel.spawn(receiver)
    kernel.run()
    # sends overlap (distinct tx NICs, 1.0 s), then rx serializes 3x1.0
    assert out["done"] == pytest.approx(4.0)


def test_fifo_matching_per_source_and_tag():
    kernel, net = make_network(latency=0.0)
    got = []

    def sender():
        net.send(0, 1, "a1", tag=1, nbytes=1)
        net.send(0, 1, "b1", tag=2, nbytes=1)
        net.send(0, 1, "a2", tag=1, nbytes=1)

    def receiver():
        got.append(net.recv(1, source=0, tag=2).payload)
        got.append(net.recv(1, source=0, tag=1).payload)
        got.append(net.recv(1, source=0, tag=1).payload)

    kernel.spawn(sender)
    kernel.spawn(receiver)
    kernel.run()
    assert got == ["b1", "a1", "a2"]


def test_wildcard_receive_reports_source():
    kernel, net = make_network(n_nodes=3, latency=0.0)
    got = []

    def sender(rank, delay):
        kernel.sleep(delay)
        net.send(rank, 0, f"from{rank}", tag=0, nbytes=5)

    def receiver():
        for _ in range(2):
            msg = net.recv(0)  # any source, any tag
            got.append((msg.src, msg.payload))

    kernel.spawn(sender, 1, 1.0)
    kernel.spawn(sender, 2, 2.0)
    kernel.spawn(receiver)
    kernel.run()
    assert got == [(1, "from1"), (2, "from2")]


def test_recv_blocks_until_message_arrives():
    kernel, net = make_network(bandwidth=1e9, latency=0.0)
    out = {}

    def receiver():
        net.recv(1, source=0)
        out["recv_at"] = kernel.now()

    def sender():
        kernel.sleep(4.0)
        net.send(0, 1, b"", tag=0, nbytes=0)

    kernel.spawn(receiver)
    kernel.spawn(sender)
    kernel.run()
    assert out["recv_at"] == pytest.approx(4.0)


def test_loopback_skips_nic():
    kernel, net = make_network(bandwidth=1.0, latency=100.0)
    out = {}

    def proc():
        net.send(0, 0, b"xyz", tag=0, nbytes=3)
        msg = net.recv(0, source=0)
        out["at"] = kernel.now()
        out["payload"] = msg.payload

    kernel.spawn(proc)
    kernel.run()
    assert out["at"] == pytest.approx(0.0)  # copy cost zeroed in fixture
    assert out["payload"] == b"xyz"
    assert net.bytes_sent[0] == 0


def test_iprobe():
    kernel, net = make_network(latency=0.0)
    out = {}

    def proc():
        out["before"] = net.iprobe(1, source=0)
        net.send(0, 1, b"m", tag=3, nbytes=1)
        out["wrong_tag"] = net.iprobe(1, source=0, tag=4)
        out["right_tag"] = net.iprobe(1, source=0, tag=3)
        net.recv(1, source=0, tag=3)

    kernel.spawn(proc)
    kernel.run()
    assert out == {"before": False, "wrong_tag": False, "right_tag": True}


def test_byte_accounting():
    kernel, net = make_network(latency=0.0)

    def sender():
        net.send(0, 1, b"x" * 40, tag=0, nbytes=40)

    def receiver():
        net.recv(1)

    kernel.spawn(sender)
    kernel.spawn(receiver)
    kernel.run()
    assert net.bytes_sent == [40, 0]
    assert net.bytes_received == [0, 40]
    assert net.messages == 1


def test_bad_rank_rejected():
    kernel, net = make_network()

    def proc():
        net.send(0, 5, b"", tag=0, nbytes=0)

    kernel.spawn(proc)
    with pytest.raises(Exception) as exc_info:
        kernel.run()
    assert "out of range" in str(exc_info.value.original)
