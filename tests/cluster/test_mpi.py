"""Unit tests for the MPI-like communicator (collectives on a cluster)."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.errors import CommError


def fast_cluster(n_nodes):
    """Cluster with negligible latencies so tests focus on semantics."""
    hw = HardwareModel(net_bandwidth=1e12, net_latency=0.0,
                       disk_bandwidth=1e12, disk_seek=0.0,
                       copy_cost_per_byte=0.0)
    return Cluster(n_nodes=n_nodes, hardware=hw)


def test_send_recv_between_mains():
    cluster = fast_cluster(2)

    def main(node, comm):
        if comm.rank == 0:
            comm.send(1, np.arange(10), tag=5)
            return None
        src, data = comm.recv(source=0, tag=5)
        return (src, data.sum())

    results = cluster.run(main)
    assert results[1] == (0, 45)


def test_barrier_synchronizes():
    cluster = fast_cluster(4)

    def main(node, comm):
        node.kernel.sleep(float(comm.rank))  # ranks arrive at 0,1,2,3
        comm.barrier()
        return node.kernel.now()

    results = cluster.run(main)
    assert all(t >= 3.0 for t in results)


def test_bcast_from_each_root():
    for root in range(3):
        cluster = fast_cluster(3)

        def main(node, comm, root=root):
            payload = {"splitters": [1, 2]} if comm.rank == root else None
            return comm.bcast(payload, root=root)

        results = cluster.run(main)
        assert all(r == {"splitters": [1, 2]} for r in results)


def test_gather_collects_in_rank_order():
    cluster = fast_cluster(4)

    def main(node, comm):
        return comm.gather(comm.rank * 10, root=0)

    results = cluster.run(main)
    assert results[0] == [0, 10, 20, 30]
    assert results[1] is None


def test_allgather():
    cluster = fast_cluster(3)

    def main(node, comm):
        return comm.allgather(f"r{comm.rank}")

    results = cluster.run(main)
    assert all(r == ["r0", "r1", "r2"] for r in results)


def test_scatter():
    cluster = fast_cluster(3)

    def main(node, comm):
        payloads = ["a", "b", "c"] if comm.rank == 0 else None
        return comm.scatter(payloads, root=0)

    assert cluster.run(main) == ["a", "b", "c"]


def test_scatter_wrong_length_rejected():
    cluster = fast_cluster(2)

    def main(node, comm):
        payloads = ["only-one"] if comm.rank == 0 else None
        return comm.scatter(payloads, root=0)

    with pytest.raises(Exception) as exc_info:
        cluster.run(main)
    assert isinstance(exc_info.value.original, CommError)


def test_alltoallv_permutes_chunks():
    cluster = fast_cluster(3)

    def main(node, comm):
        chunks = [f"{comm.rank}->{j}" for j in range(comm.size)]
        return comm.alltoallv(chunks)

    results = cluster.run(main)
    for j, received in enumerate(results):
        assert received == [f"{i}->{j}" for i in range(3)]


def test_alltoall_requires_equal_sizes():
    cluster = fast_cluster(2)

    def main(node, comm):
        if comm.rank == 0:
            chunks = [np.zeros(1, np.uint8), np.zeros(2, np.uint8)]
        else:
            chunks = [np.zeros(1, np.uint8), np.zeros(1, np.uint8)]
        return comm.alltoall(chunks)

    with pytest.raises(Exception) as exc_info:
        cluster.run(main)
    assert isinstance(exc_info.value.original, CommError)


def test_alltoall_balanced_roundtrip():
    cluster = fast_cluster(4)

    def main(node, comm):
        chunks = [np.full(8, comm.rank * 10 + j, dtype=np.int64)
                  for j in range(comm.size)]
        received = comm.alltoall(chunks)
        return [int(chunk[0]) for chunk in received]

    results = cluster.run(main)
    for j, got in enumerate(results):
        assert got == [i * 10 + j for i in range(4)]


def test_sendrecv_replace_exchanges():
    cluster = fast_cluster(2)

    def main(node, comm):
        peer = 1 - comm.rank
        return comm.sendrecv_replace(f"mine-{comm.rank}", peer)

    assert cluster.run(main) == ["mine-1", "mine-0"]


def test_sendrecv_replace_self_is_identity():
    cluster = fast_cluster(1)

    def main(node, comm):
        return comm.sendrecv_replace("me", 0)

    assert cluster.run(main) == ["me"]


def test_allreduce_sum_and_custom_op():
    cluster = fast_cluster(4)

    def main(node, comm):
        total = comm.allreduce(comm.rank + 1)
        biggest = comm.allreduce(comm.rank, op=max)
        return total, biggest

    results = cluster.run(main)
    assert all(r == (10, 3) for r in results)


def test_negative_user_tag_rejected():
    cluster = fast_cluster(2)

    def main(node, comm):
        if comm.rank == 0:
            comm.send(1, b"", tag=-3)
        else:
            comm.recv(source=0)

    with pytest.raises(Exception) as exc_info:
        cluster.run(main)
    assert isinstance(exc_info.value.original, CommError)


def test_consecutive_collectives_do_not_interfere():
    cluster = fast_cluster(3)

    def main(node, comm):
        first = comm.bcast(comm.rank if comm.rank == 0 else None, root=0)
        comm.barrier()
        second = comm.bcast("two" if comm.rank == 0 else None, root=0)
        third = comm.allgather(comm.rank)
        return first, second, third

    results = cluster.run(main)
    assert all(r == (0, "two", [0, 1, 2]) for r in results)


def test_single_node_collectives_trivial():
    cluster = fast_cluster(1)

    def main(node, comm):
        comm.barrier()
        assert comm.bcast("x", root=0) == "x"
        assert comm.gather(5, root=0) == [5]
        assert comm.alltoallv(["self"]) == ["self"]
        return True

    assert cluster.run(main) == [True]


def test_cluster_stats_accumulate():
    cluster = fast_cluster(2)

    def main(node, comm):
        node.disk.write("f", 0, np.zeros(100, dtype=np.uint8))
        if comm.rank == 0:
            comm.send(1, np.zeros(64, dtype=np.uint8), tag=0)
        else:
            comm.recv(source=0)

    cluster.run(main)
    assert cluster.total_bytes_io() == 200
    assert cluster.total_bytes_sent() == 64
