"""Unit tests for the hardware cost model."""

import math

import pytest

from repro.cluster.hardware import HardwareModel


def test_paper_preset_values():
    hw = HardwareModel.paper_cluster()
    assert hw.cores_per_node == 2
    assert hw.disk_bandwidth == 60e6
    assert hw.net_bandwidth == 250e6


def test_disk_time_is_seek_plus_transfer():
    hw = HardwareModel(disk_bandwidth=100.0, disk_seek=2.0)
    assert hw.disk_time(50) == pytest.approx(2.5)
    assert hw.disk_time(0) == pytest.approx(2.0)


def test_wire_time():
    hw = HardwareModel(net_bandwidth=200.0)
    assert hw.wire_time(100) == pytest.approx(0.5)


def test_sort_time_n_log_n():
    hw = HardwareModel(sort_cost_per_key_log=1.0)
    assert hw.sort_time(0) == 0.0
    assert hw.sort_time(1) == 0.0
    assert hw.sort_time(8) == pytest.approx(8 * 3)
    assert hw.sort_time(1024) == pytest.approx(1024 * 10)


def test_copy_and_merge_time_linear():
    hw = HardwareModel(copy_cost_per_byte=2.0, merge_cost_per_record=3.0)
    assert hw.copy_time(10) == pytest.approx(20.0)
    assert hw.merge_time(10) == pytest.approx(30.0)


def test_scaled_paper_cluster_scales_overheads_only():
    base = HardwareModel.paper_cluster()
    scaled = HardwareModel.scaled_paper_cluster(1 / 10)
    assert scaled.disk_seek == pytest.approx(base.disk_seek / 10)
    assert scaled.net_latency == pytest.approx(base.net_latency / 10)
    assert scaled.disk_bandwidth == base.disk_bandwidth
    assert scaled.net_bandwidth == base.net_bandwidth
    assert scaled.sort_cost_per_key_log == base.sort_cost_per_key_log


def test_scaled_paper_cluster_bounds():
    with pytest.raises(ValueError):
        HardwareModel.scaled_paper_cluster(0.0)
    with pytest.raises(ValueError):
        HardwareModel.scaled_paper_cluster(1.5)
    HardwareModel.scaled_paper_cluster(1.0)  # boundary ok


def test_validation_rejects_nonsense():
    with pytest.raises(ValueError):
        HardwareModel(cores_per_node=0)
    with pytest.raises(ValueError):
        HardwareModel(disk_bandwidth=0)
    with pytest.raises(ValueError):
        HardwareModel(net_bandwidth=-1)
    with pytest.raises(ValueError):
        HardwareModel(disk_seek=-1e-9)
    with pytest.raises(ValueError):
        HardwareModel(sort_cost_per_key_log=-1)


def test_presets_are_valid_and_distinct():
    presets = [HardwareModel.paper_cluster(), HardwareModel.fast_network(),
               HardwareModel.slow_disk(), HardwareModel.uniform(1e6)]
    assert len({(p.disk_bandwidth, p.net_bandwidth, p.disk_seek)
                for p in presets}) == 4


def test_uniform_preset_equalizes_rates():
    hw = HardwareModel.uniform(123.0)
    assert hw.disk_time(123) == pytest.approx(1.0)
    assert hw.wire_time(123) == pytest.approx(1.0)


def test_model_is_frozen():
    hw = HardwareModel()
    with pytest.raises(Exception):
        hw.disk_bandwidth = 1.0
