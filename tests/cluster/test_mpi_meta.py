"""Tests for message metadata and recv_msg (used by dsort pass 2)."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel


def fast_cluster(n):
    return Cluster(n_nodes=n, hardware=HardwareModel(
        net_bandwidth=1e12, net_latency=0.0, copy_cost_per_byte=0.0))


def test_meta_travels_with_message():
    cluster = fast_cluster(2)

    def main(node, comm):
        if comm.rank == 0:
            comm.send(1, np.arange(4), tag=3,
                      meta={"global_block": 7, "offset": 2})
            return None
        msg = comm.recv_msg(source=0, tag=3)
        return (msg.src, msg.tag, msg.meta, int(msg.payload.sum()))

    results = cluster.run(main)
    assert results[1] == (0, 3, {"global_block": 7, "offset": 2}, 6)


def test_meta_is_charged_as_fixed_header():
    hw = HardwareModel(net_bandwidth=100.0, net_latency=0.0)
    cluster = Cluster(n_nodes=2, hardware=hw)

    def main(node, comm):
        if comm.rank == 0:
            comm.send(1, b"x" * 100, tag=0, meta={"k": 1})
        else:
            comm.recv_msg(source=0)
            return node.kernel.now()

    results = cluster.run(main)
    # tx (100+64)/100 + rx 164/100 = 3.28 seconds
    assert results[1] == pytest.approx(3.28)


def test_message_without_meta_has_none():
    cluster = fast_cluster(2)

    def main(node, comm):
        if comm.rank == 0:
            comm.send(1, b"hello", tag=1)
            return None
        msg = comm.recv_msg(source=0, tag=1)
        return msg.meta

    assert cluster.run(main)[1] is None


def test_recv_msg_tag_validation():
    cluster = fast_cluster(1)

    def main(node, comm):
        comm.recv_msg(tag=-5)

    with pytest.raises(Exception) as exc_info:
        cluster.run(main)
    assert "tags" in str(exc_info.value.original)
