"""Unit tests for the simulated disk: timing, contention, accounting."""

import numpy as np
import pytest

from repro.cluster.disk import Disk
from repro.cluster.hardware import HardwareModel
from repro.cluster.storage import MemoryStorage
from repro.sim import VirtualTimeKernel


def make_disk(kernel, bandwidth=100.0, seek=1.0):
    hw = HardwareModel(disk_bandwidth=bandwidth, disk_seek=seek)
    return Disk(kernel, MemoryStorage(), hw)


def test_read_write_roundtrip_with_timing():
    kernel = VirtualTimeKernel()
    disk = make_disk(kernel, bandwidth=100.0, seek=1.0)
    out = {}

    def proc():
        disk.write("f", 0, np.arange(50, dtype=np.uint8))  # 1 + 50/100 = 1.5
        out["after_write"] = kernel.now()
        out["data"] = disk.read("f", 0, 50)                # another 1.5

    kernel.spawn(proc)
    kernel.run()
    assert out["after_write"] == pytest.approx(1.5)
    assert kernel.now() == pytest.approx(3.0)
    np.testing.assert_array_equal(out["data"], np.arange(50, dtype=np.uint8))


def test_concurrent_requests_serialize_on_arm():
    kernel = VirtualTimeKernel()
    disk = make_disk(kernel, bandwidth=100.0, seek=0.0)
    data = np.zeros(100, dtype=np.uint8)

    def writer(i):
        disk.write(f"f{i}", 0, data)  # 1.0 s each

    for i in range(3):
        kernel.spawn(writer, i)
    kernel.run()
    assert kernel.now() == pytest.approx(3.0)


def test_io_accounting():
    kernel = VirtualTimeKernel()
    disk = make_disk(kernel)

    def proc():
        disk.write("f", 0, np.zeros(64, dtype=np.uint8))
        disk.write("f", 64, np.zeros(64, dtype=np.uint8))
        disk.read("f", 0, 128)

    kernel.spawn(proc)
    kernel.run()
    assert disk.bytes_written == 128
    assert disk.bytes_read == 128
    assert disk.bytes_total == 256
    assert disk.writes == 2
    assert disk.reads == 1


def test_busy_time_matches_model():
    kernel = VirtualTimeKernel()
    disk = make_disk(kernel, bandwidth=100.0, seek=1.0)

    def proc():
        disk.write("f", 0, np.zeros(100, dtype=np.uint8))  # 2.0 s busy
        kernel.sleep(5.0)                                  # idle

    kernel.spawn(proc)
    kernel.run()
    assert disk.busy_time() == pytest.approx(2.0)


def test_negative_read_length_rejected():
    kernel = VirtualTimeKernel()
    disk = make_disk(kernel)

    def proc():
        disk.read("f", 0, -1)

    kernel.spawn(proc)
    with pytest.raises(Exception) as exc_info:
        kernel.run()
    assert "negative" in str(exc_info.value.original)


def test_multidtype_write_sizes_by_raw_bytes():
    kernel = VirtualTimeKernel()
    disk = make_disk(kernel, bandwidth=8.0, seek=0.0)

    def proc():
        disk.write("f", 0, np.array([1], dtype="<u8"))  # 8 bytes -> 1.0 s

    kernel.spawn(proc)
    kernel.run()
    assert kernel.now() == pytest.approx(1.0)
    assert disk.bytes_written == 8
