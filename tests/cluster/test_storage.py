"""Unit tests for storage backends (memory and real files)."""

import numpy as np
import pytest

from repro.cluster.storage import FileStorage, MemoryStorage
from repro.errors import StorageError


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        return MemoryStorage()
    return FileStorage(str(tmp_path / "disk0"))


def test_write_then_read_roundtrip(storage):
    data = np.arange(256, dtype=np.uint8)
    storage.write("f", 0, data)
    out = storage.read("f", 0, 256)
    np.testing.assert_array_equal(out, data)


def test_partial_read(storage):
    storage.write("f", 0, np.arange(100, dtype=np.uint8))
    out = storage.read("f", 10, 5)
    np.testing.assert_array_equal(out, [10, 11, 12, 13, 14])


def test_write_at_offset_extends_with_zero_fill(storage):
    storage.write("f", 0, np.array([1, 2], dtype=np.uint8))
    storage.write("f", 5, np.array([9], dtype=np.uint8))
    assert storage.size("f") == 6
    out = storage.read("f", 0, 6)
    np.testing.assert_array_equal(out, [1, 2, 0, 0, 0, 9])


def test_overwrite_in_place(storage):
    storage.write("f", 0, np.zeros(10, dtype=np.uint8))
    storage.write("f", 3, np.array([7, 7], dtype=np.uint8))
    out = storage.read("f", 0, 10)
    np.testing.assert_array_equal(out, [0, 0, 0, 7, 7, 0, 0, 0, 0, 0])
    assert storage.size("f") == 10


def test_non_uint8_dtype_written_as_raw_bytes(storage):
    values = np.array([1, 2, 3], dtype="<u8")
    storage.write("f", 0, values)
    assert storage.size("f") == 24
    out = storage.read("f", 0, 24)
    np.testing.assert_array_equal(out.view("<u8"), values)


def test_read_missing_file_raises(storage):
    with pytest.raises(StorageError):
        storage.read("ghost", 0, 1)


def test_read_past_end_raises(storage):
    storage.write("f", 0, np.zeros(4, dtype=np.uint8))
    with pytest.raises(StorageError):
        storage.read("f", 0, 5)


def test_negative_offset_rejected(storage):
    with pytest.raises(StorageError):
        storage.read("f", -1, 1)


def test_exists_delete_names(storage):
    assert not storage.exists("a")
    storage.write("a", 0, np.zeros(1, dtype=np.uint8))
    storage.write("b", 0, np.zeros(1, dtype=np.uint8))
    assert storage.exists("a")
    assert storage.names() == ["a", "b"]
    storage.delete("a")
    assert not storage.exists("a")
    assert storage.names() == ["b"]
    storage.delete("a")  # idempotent


def test_truncate_shrink_and_grow(storage):
    storage.write("f", 0, np.arange(10, dtype=np.uint8))
    storage.truncate("f", 4)
    assert storage.size("f") == 4
    storage.truncate("f", 8)
    assert storage.size("f") == 8
    out = storage.read("f", 0, 8)
    np.testing.assert_array_equal(out, [0, 1, 2, 3, 0, 0, 0, 0])


def test_file_storage_rejects_path_traversal(tmp_path):
    fs = FileStorage(str(tmp_path / "d"))
    with pytest.raises(StorageError):
        fs.write("../evil", 0, np.zeros(1, dtype=np.uint8))
    with pytest.raises(StorageError):
        fs.read("a/b", 0, 1)


def test_empty_read_of_existing_file(storage):
    storage.write("f", 0, np.zeros(3, dtype=np.uint8))
    out = storage.read("f", 1, 0)
    assert out.size == 0
