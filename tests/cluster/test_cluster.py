"""Unit tests for Cluster assembly and SPMD helpers."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel, MemoryStorage
from repro.errors import ClusterError, ConfigError


def test_zero_nodes_rejected():
    with pytest.raises(ClusterError):
        Cluster(n_nodes=0)


def test_storage_count_must_match():
    with pytest.raises(ClusterError):
        Cluster(n_nodes=3, storages=[MemoryStorage()])


def test_storage_mismatch_is_config_error_with_counts():
    with pytest.raises(ConfigError, match="3 node.*1 storage"):
        Cluster(n_nodes=3, storages=[MemoryStorage()])


@pytest.mark.parametrize("capacity", [0, -1, -4096])
def test_nonpositive_mailbox_capacity_rejected(capacity):
    # a mailbox that can never admit a message used to surface as a
    # late all-blocked deadlock; now it is a construction-time error
    with pytest.raises(ConfigError, match="mailbox_capacity_bytes"):
        Cluster(n_nodes=2, mailbox_capacity_bytes=capacity)


def test_config_error_is_a_cluster_error():
    # callers catching the broader class must keep working
    assert issubclass(ConfigError, ClusterError)


def test_defaults_are_paper_hardware():
    cluster = Cluster(n_nodes=2)
    assert cluster.hardware == HardwareModel.paper_cluster()
    assert cluster.n_nodes == 2


def test_node_and_comm_accessors():
    cluster = Cluster(n_nodes=3)
    for rank in range(3):
        assert cluster.node(rank).rank == rank
        assert cluster.comm(rank).rank == rank
        assert cluster.comm(rank).size == 3


def test_spawn_spmd_names_processes_by_rank():
    cluster = Cluster(n_nodes=2)

    def main(node, comm):
        return comm.rank

    procs = cluster.spawn_spmd(main, name="worker")
    assert [p.name for p in procs] == ["worker@0", "worker@1"]
    cluster.kernel.run()
    assert [p.result for p in procs] == [0, 1]


def test_run_passes_extra_args():
    cluster = Cluster(n_nodes=2)
    results = cluster.run(lambda node, comm, a: (comm.rank, a), 42)
    assert results == [(0, 42), (1, 42)]


def test_aggregate_stats_start_at_zero():
    cluster = Cluster(n_nodes=2)
    assert cluster.total_bytes_io() == 0
    assert cluster.total_bytes_sent() == 0
    assert cluster.max_disk_busy() == 0.0


def test_max_disk_busy_tracks_hottest_disk():
    cluster = Cluster(n_nodes=2, hardware=HardwareModel(
        disk_bandwidth=100.0, disk_seek=0.0))

    def main(node, comm):
        if comm.rank == 1:
            node.disk.write("f", 0, np.zeros(300, dtype=np.uint8))

    cluster.run(main)
    assert cluster.max_disk_busy() == pytest.approx(3.0)
    assert cluster.node(0).disk.busy_time() == 0.0
