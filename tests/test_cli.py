"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["--version"])
    assert exc_info.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_requires_a_command():
    with pytest.raises(SystemExit):
        main([])


def test_distributions_lists_and_marks(capsys):
    assert main(["distributions"]) == 0
    out = capsys.readouterr().out
    assert "uniform  [paper]" in out
    assert "sorted  [adversarial]" in out
    assert "zipf" in out


def test_sort_small_run(capsys):
    code = main(["sort", "--sorter", "dsort", "--nodes", "2",
                 "--records-per-node", "512", "--distribution", "poisson"])
    assert code == 0
    out = capsys.readouterr().out
    assert "output verified: True" in out
    assert "pass1" in out and "pass2" in out
    assert "partition max/avg" in out


def test_sort_csort_small_run(capsys):
    code = main(["sort", "--sorter", "csort", "--nodes", "2",
                 "--records-per-node", "2048"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pass3" in out
    # csort's three passes each read AND write the data once = 6x volume
    assert "6.00x data volume" in out


def test_sort_rejects_unknown_sorter():
    with pytest.raises(SystemExit):
        main(["sort", "--sorter", "quicksort"])


def test_sweep_small(capsys):
    code = main(["sweep", "--nodes", "2", "--blocks", "128,256"])
    assert code == 0
    out = capsys.readouterr().out
    assert "128" in out and "256" in out


def test_overlap_command(capsys):
    assert main(["overlap"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_trace_command(capsys):
    code = main(["trace", "--nodes", "2", "--records-per-node", "2048",
                 "--width", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "stage threads" in out
    assert "dsort-p1@0.read" in out
    assert "#" in out


def test_trace_command_writes_artifacts(tmp_path, capsys):
    trace_out = tmp_path / "t.json"
    metrics_out = tmp_path / "m.json"
    code = main(["trace", "--nodes", "2", "--records-per-node", "2048",
                 "--width", "60", "--trace-out", str(trace_out),
                 "--metrics-out", str(metrics_out)])
    assert code == 0
    doc = json.loads(trace_out.read_text())
    assert doc["traceEvents"]
    snap = json.loads(metrics_out.read_text())
    assert snap["counters"]
    out = capsys.readouterr().out
    assert str(trace_out) in out


def test_analyze_quickstart(tmp_path, capsys):
    trace_out = tmp_path / "trace.json"
    code = main(["analyze", "--rounds", "12",
                 "--trace-out", str(trace_out)])
    assert code == 0
    out = capsys.readouterr().out
    # the workload is built so compute dominates; the report must name it
    assert "bottleneck analysis" in out
    assert "quickstart.compute" in out.split("<-- bottleneck")[0]
    doc = json.loads(trace_out.read_text())
    events = doc["traceEvents"]
    assert {"M", "X", "C"} <= {ev["ph"] for ev in events}
    names = {ev["args"]["name"] for ev in events
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    assert any(n.startswith("quickstart.") for n in names)


def test_analyze_dsort_workload(tmp_path, capsys):
    code = main(["analyze", "--workload", "dsort", "--nodes", "2",
                 "--records-per-node", "2048",
                 "--trace-out", str(tmp_path / "t.json"),
                 "--metrics-out", str(tmp_path / "m.json")])
    assert code == 0
    out = capsys.readouterr().out
    assert "<-- bottleneck" in out
    snap = json.loads((tmp_path / "m.json").read_text())
    assert any(name.startswith("channel.") for name in snap["gauges"])


def test_apps_command(capsys):
    code = main(["apps", "--nodes", "2", "--matrix-side", "8",
                 "--kv-per-node", "500", "--key-space", "20"])
    assert code == 0
    out = capsys.readouterr().out
    assert "transpose:" in out
    assert "group-by:" in out
    assert "20 groups" in out


def test_apps_rejects_indivisible_matrix():
    with pytest.raises(SystemExit):
        main(["apps", "--nodes", "3", "--matrix-side", "8"])


def test_parser_structure():
    parser = build_parser()
    # subcommands exist
    args = parser.parse_args(["sort"])
    assert args.command == "sort"
    assert args.sorter == "dsort"
    args = parser.parse_args(["figure8", "--record-bytes", "64"])
    assert args.record_bytes == 64


def test_chaos_command_reports_and_verifies(capsys):
    code = main(["chaos", "--nodes", "2", "--records-per-node", "360",
                 "--seed", "5", "--disk-fault-rate", "0.05",
                 "--drop-rate", "0.02", "--block-records", "64"])
    assert code == 0
    out = capsys.readouterr().out
    assert "verified         True" in out
    assert "faults fired" in out
    assert "output sha256" in out


def test_chaos_command_determinism_check(tmp_path, capsys):
    trace_out = tmp_path / "chaos.json"
    code = main(["chaos", "--nodes", "2", "--records-per-node", "360",
                 "--seed", "5", "--block-records", "64",
                 "--check-determinism", "--trace-out", str(trace_out)])
    assert code == 0
    out = capsys.readouterr().out
    assert "determinism check: PASS" in out
    doc = json.loads(trace_out.read_text())
    assert any(ev.get("cat") == "fault" for ev in doc["traceEvents"])


def test_chaos_command_pass_restart(capsys):
    code = main(["chaos", "--nodes", "2", "--records-per-node", "360",
                 "--seed", "5", "--disk-fault-rate", "0",
                 "--drop-rate", "0", "--kill-disk-op", "20",
                 "--kill-disk-rank", "1", "--block-records", "64"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pass restarts    1" in out
    assert "verified         True" in out
