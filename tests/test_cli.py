"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["--version"])
    assert exc_info.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_requires_a_command():
    with pytest.raises(SystemExit):
        main([])


def test_distributions_lists_and_marks(capsys):
    assert main(["distributions"]) == 0
    out = capsys.readouterr().out
    assert "uniform  [paper]" in out
    assert "sorted  [adversarial]" in out
    assert "zipf" in out


def test_sort_small_run(capsys):
    code = main(["sort", "--sorter", "dsort", "--nodes", "2",
                 "--records-per-node", "512", "--distribution", "poisson"])
    assert code == 0
    out = capsys.readouterr().out
    assert "output verified: True" in out
    assert "pass1" in out and "pass2" in out
    assert "partition max/avg" in out


def test_sort_csort_small_run(capsys):
    code = main(["sort", "--sorter", "csort", "--nodes", "2",
                 "--records-per-node", "2048"])
    assert code == 0
    out = capsys.readouterr().out
    assert "pass3" in out
    # csort's three passes each read AND write the data once = 6x volume
    assert "6.00x data volume" in out


def test_sort_rejects_unknown_sorter():
    with pytest.raises(SystemExit):
        main(["sort", "--sorter", "quicksort"])


def test_sweep_small(capsys):
    code = main(["sweep", "--nodes", "2", "--blocks", "128,256"])
    assert code == 0
    out = capsys.readouterr().out
    assert "128" in out and "256" in out


def test_overlap_command(capsys):
    assert main(["overlap"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_trace_command(capsys):
    code = main(["trace", "--nodes", "2", "--records-per-node", "2048",
                 "--width", "60"])
    assert code == 0
    out = capsys.readouterr().out
    assert "stage threads" in out
    assert "dsort-p1@0.read" in out
    assert "#" in out


def test_apps_command(capsys):
    code = main(["apps", "--nodes", "2", "--matrix-side", "8",
                 "--kv-per-node", "500", "--key-space", "20"])
    assert code == 0
    out = capsys.readouterr().out
    assert "transpose:" in out
    assert "group-by:" in out
    assert "20 groups" in out


def test_apps_rejects_indivisible_matrix():
    with pytest.raises(SystemExit):
        main(["apps", "--nodes", "3", "--matrix-side", "8"])


def test_parser_structure():
    parser = build_parser()
    # subcommands exist
    args = parser.parse_args(["sort"])
    assert args.command == "sort"
    assert args.sorter == "dsort"
    args = parser.parse_args(["figure8", "--record-bytes", "64"])
    assert args.record_bytes == 64
