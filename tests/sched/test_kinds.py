"""Job kinds through the scheduler: real programs, correct outputs."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.errors import SchedError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.sched import (
    JobKind,
    JobSpec,
    JobState,
    Quota,
    Scheduler,
    get_kind,
    kind_names,
    register_kind,
)
from repro.sim.trace import Tracer
from repro.sim.virtual import VirtualTimeKernel


def run_one(spec, n_nodes=2, **sched_kwargs):
    kernel = VirtualTimeKernel(tracer=Tracer())
    cluster = Cluster(n_nodes=n_nodes, kernel=kernel)
    sched = Scheduler(cluster, {spec.tenant: Quota()}, "fifo",
                      **sched_kwargs)
    sched.start()
    job = sched.submit(spec)
    sched.close()
    kernel.run()
    return cluster, sched, job


def test_registry_has_builtins():
    assert set(kind_names()) >= {"blocks", "csort", "dsort", "groupby"}
    with pytest.raises(SchedError, match="unknown job kind"):
        get_kind("nope")


def test_register_custom_kind():
    ran = []

    def runner(node, comm, job, ctl, shared):
        ran.append(comm.rank)
        return "hi"

    register_kind(JobKind(name="custom-test", runner=runner,
                          demand=lambda spec: 1))
    try:
        _, _, job = run_one(JobSpec(tenant="t", kind="custom-test",
                                    n_nodes=2))
        assert job.state is JobState.DONE
        assert sorted(ran) == [0, 1]
        assert job.result == ["hi", "hi"]
    finally:
        from repro.sched.kinds import _KINDS

        del _KINDS["custom-test"]


def test_dsort_job_produces_sorted_output():
    spec = JobSpec(tenant="t", kind="dsort", n_nodes=2,
                   params={"records_per_node": 600})
    cluster, _, job = run_one(spec)
    assert job.state is JobState.DONE, job.error
    from repro.pdm.striped import StripedFile

    schema = RecordSchema(16)
    striped = StripedFile(cluster, "j0-output", schema,
                          block_records=256, owners=job.alloc)
    out = striped.read_all()
    keys = out["key"]
    assert len(keys) == 1200
    assert np.all(keys[:-1] <= keys[1:])  # globally sorted PDM stripes


def test_preempted_dsort_resumes_from_journals():
    """A dsort preempted at the after-pass-1 safe point resumes without
    redoing pass 1: the resumed attempt runs measurably less work than
    a clean full run of the identical job."""
    spec = JobSpec(
        tenant="t", kind="dsort", n_nodes=2,
        params={"records_per_node": 2000, "recover": True,
                "block_records": 128})

    # deterministic baseline: the same job, uninterrupted
    _, _, clean = run_one(spec)
    assert clean.state is JobState.DONE, clean.error
    clean_time = clean.end_time - clean.start_time

    kernel = VirtualTimeKernel(tracer=Tracer())
    cluster = Cluster(n_nodes=2, kernel=kernel)
    sched = Scheduler(cluster, {"t": Quota()}, "fifo")
    sched.start()
    job = sched.submit(spec)

    def meddler():
        # land inside pass 1 (sampling is ~10% of the run), so the job
        # stops at the after-pass-1 safe point with its runs journaled
        kernel.sleep(0.3 * clean_time)
        assert sched.preempt(job.id, "test")
        sched.close()

    kernel.spawn(meddler, name="meddler")
    kernel.run()
    assert job.state is JobState.DONE, job.error
    assert job.preemptions == 1 and job.attempts == 2
    resumed_attempt = job.end_time - job.start_time
    # the resume skipped pass 1 entirely: strictly less work than a
    # full restart would have done
    assert resumed_attempt < 0.9 * clean_time


def test_groupby_job_aggregates():
    spec = JobSpec(tenant="t", kind="groupby", n_nodes=2,
                   params={"records_per_node": 500, "distinct_keys": 40})
    cluster, _, job = run_one(spec)
    assert job.state is JobState.DONE, job.error
    assert all(r["records"] == 500 for r in job.result)
    # each key lives on exactly one node; distinct counts partition 40
    total_distinct = sum(r["distinct"] for r in job.result)
    assert total_distinct == 40

    from repro.apps.groupby import KeyValueSchema

    schema = KeyValueSchema()
    for p in job.alloc:
        rf = RecordFile(cluster.nodes[p].disk, "j0-kv-groups", schema)
        groups = rf.read_all()
        keys = groups["key"]
        assert np.all(keys[:-1] < keys[1:])  # sorted, unique


def test_csort_job_sorts():
    spec = JobSpec(tenant="t", kind="csort", n_nodes=2,
                   params={"records_per_node": 512})
    cluster, _, job = run_one(spec)
    assert job.state is JobState.DONE, job.error


def test_demand_scales_with_spec():
    small = JobSpec(tenant="t", kind="blocks", n_nodes=1)
    big = JobSpec(tenant="t", kind="blocks", n_nodes=4,
                  params={"block_bytes": 1 << 20})
    kind = get_kind("blocks")
    assert kind.demand(big) > kind.demand(small) > 0
