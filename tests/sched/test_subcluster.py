"""SubCluster isolation: rank translation and per-job tag windows."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.errors import SchedError
from repro.sched import SubCluster
from repro.sched.subcluster import TAG_PAD, JobNetwork
from repro.sim.virtual import VirtualTimeKernel

TAG = 7  # the same user tag, deliberately shared by both jobs


def test_job_network_validates_alloc_and_tag_base():
    cluster = Cluster(n_nodes=4)
    with pytest.raises(SchedError, match="duplicate"):
        JobNetwork(cluster.network, [1, 1], tag_base=0)
    with pytest.raises(SchedError, match="out of range"):
        JobNetwork(cluster.network, [3, 4], tag_base=0)
    with pytest.raises(SchedError, match="tag_base"):
        JobNetwork(cluster.network, [0, 1], tag_base=-1)


def test_local_ranks_and_translated_tags():
    kernel = VirtualTimeKernel()
    cluster = Cluster(n_nodes=4, kernel=kernel)
    sub = SubCluster(cluster, alloc=[2, 3], tag_base=1024)
    assert sub.n_nodes == 2
    assert [c.rank for c in sub.comms] == [0, 1]

    seen = {}

    def main(node, comm):
        if comm.rank == 0:
            comm.send(1, np.arange(4, dtype=np.uint8), tag=TAG)
        else:
            src, payload = comm.recv(tag=TAG)
            seen["src"] = src
            seen["payload"] = list(payload)

    sub.spawn_spmd(main, name="iso")
    kernel.run()
    # receiver sees the *local* source rank, not physical node 2
    assert seen["src"] == 0
    assert seen["payload"] == [0, 1, 2, 3]
    # and on the wire the tag lived inside the job's window
    phys = sub.network._phys_tag(TAG)
    assert phys == 1024 + TAG_PAD + TAG


def test_two_jobs_same_tag_never_cross():
    """Two jobs use the same user tag concurrently; each receives only
    its own traffic because their tag windows (and nodes) are disjoint."""
    kernel = VirtualTimeKernel()
    cluster = Cluster(n_nodes=4, kernel=kernel)
    jobs = {
        "a": SubCluster(cluster, alloc=[0, 1], tag_base=1024),
        "b": SubCluster(cluster, alloc=[2, 3], tag_base=2048),
    }
    got = {}

    def main(node, comm, label, value):
        if comm.rank == 0:
            payload = np.full(8, value, dtype=np.uint8)
            comm.send(1, payload, tag=TAG)
        else:
            src, payload = comm.recv(tag=TAG)
            got[label] = (src, int(payload[0]))

    jobs["a"].spawn_spmd(main, "a", 11, name="job-a")
    jobs["b"].spawn_spmd(main, "b", 22, name="job-b")
    kernel.run()
    assert got == {"a": (0, 11), "b": (0, 22)}


def test_collectives_work_inside_a_window():
    """The negative internal collective tags translate cleanly too."""
    kernel = VirtualTimeKernel()
    cluster = Cluster(n_nodes=4, kernel=kernel)
    sub = SubCluster(cluster, alloc=[1, 3], tag_base=4096)
    sums = []

    def main(node, comm):
        total = comm.allreduce(comm.rank + 1)
        sums.append(total)

    sub.spawn_spmd(main, name="coll")
    kernel.run()
    assert sums == [3, 3]


def test_injector_is_hidden():
    cluster = Cluster(n_nodes=2)
    sub = SubCluster(cluster, alloc=[0, 1], tag_base=1024)
    assert sub.injector is None
    assert sub.hardware is cluster.hardware
    assert sub.kernel is cluster.kernel
