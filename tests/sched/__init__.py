"""Tests for the multi-tenant scheduler (repro.sched)."""
