"""run_schedule end to end: stats, determinism, provenance, CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import SchedError
from repro.sched import (
    Arrival,
    ArrivalTrace,
    JobSpec,
    Quota,
    run_schedule,
    synthetic_trace,
)
from repro.sched.harness import percentile


# -- workload traces ---------------------------------------------------------


def test_trace_json_round_trip():
    trace = synthetic_trace(11, 25, ("a", "b"), kinds=("blocks",))
    again = ArrivalTrace.loads(trace.dumps())
    assert again == trace
    assert again.tenants == trace.tenants


def test_synthetic_trace_is_seed_deterministic():
    t1 = synthetic_trace(5, 40, ("a", "b"))
    t2 = synthetic_trace(5, 40, ("a", "b"))
    t3 = synthetic_trace(6, 40, ("a", "b"))
    assert t1 == t2
    assert t1 != t3


def test_trace_orders_arrivals():
    trace = ArrivalTrace(arrivals=(
        Arrival(2.0, JobSpec(tenant="t", kind="blocks")),
        Arrival(1.0, JobSpec(tenant="t", kind="blocks")),
    ))
    assert [a.time for a in trace] == [1.0, 2.0]


def test_tenant_share_skews_load():
    trace = synthetic_trace(3, 200, ("heavy", "light"),
                            tenant_share={"heavy": 9.0, "light": 1.0})
    heavy = sum(1 for a in trace if a.spec.tenant == "heavy")
    assert heavy > 150


def test_synthetic_trace_validation():
    with pytest.raises(SchedError):
        synthetic_trace(0, 0)
    with pytest.raises(SchedError):
        synthetic_trace(0, 5, ())


# -- percentile helper -------------------------------------------------------


def test_percentile_nearest_rank():
    values = [float(v) for v in range(1, 11)]  # 1..10
    assert percentile(values, 0.50) == 5.0
    assert percentile(values, 0.99) == 10.0
    assert percentile(values, 0.0) == 1.0
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 1.5)


# -- end-to-end runs ---------------------------------------------------------


def small_run(policy="fifo", seed=4, provenance=True):
    trace = synthetic_trace(seed, 16, ("a", "b"),
                            mean_interarrival=0.05)
    return run_schedule(trace, n_nodes=4,
                        quotas={"a": Quota(), "b": Quota()},
                        policy=policy, seed=seed,
                        provenance=provenance)


def test_report_accounts_for_every_job():
    report = small_run()
    assert len(report.jobs) == 16
    assert report.done == 16 and report.failed == 0
    assert 0.0 < report.utilization <= 1.0
    per_tenant = sum(st["jobs"] for st in report.tenants.values())
    assert per_tenant == 16
    for st in report.tenants.values():
        assert st["p99"] >= st["p50"] >= 0.0
    assert "sched.jobs.done" in report.metrics["counters"]


def test_identical_runs_have_identical_decision_logs():
    r1 = small_run()
    r2 = small_run()
    assert r1.decision_digest == r2.decision_digest
    assert r1.decisions == r2.decisions
    assert r1.provenance.record_digest() == r2.provenance.record_digest()


def test_different_policy_changes_the_log():
    r1 = small_run(policy="fifo")
    r2 = small_run(policy="fair")
    assert r1.decision_digest != r2.decision_digest


def test_provenance_replays_byte_exactly():
    from repro.prov import replay

    report = small_run()
    record = report.provenance
    assert record.kind == "sched"
    assert record.sched_decisions  # decisions captured off the trace
    result = replay(record)
    assert result.ok, result.describe()
    assert result.matches["decisions"]


def test_fair_share_rescues_the_starved_tenant():
    """A flooding heavy tenant starves the light tenant under FIFO;
    weighted fair share restores the light tenant's latency."""
    trace = synthetic_trace(
        9, 80, ("heavy", "light"),
        mean_interarrival=0.02,
        tenant_share={"heavy": 8.0, "light": 1.0},
        params={"blocks": {"blocks": 6, "compute": 0.01}})
    quotas = {"heavy": Quota(max_nodes=2, max_inflight=2),
              "light": Quota(max_nodes=2, max_inflight=2)}

    fifo = run_schedule(trace, n_nodes=2, quotas=quotas,
                        policy="fifo", provenance=False)
    fair = run_schedule(trace, n_nodes=2, quotas=quotas,
                        policy="fair", provenance=False)
    assert fifo.done == fair.done == 80
    assert fair.tenants["light"]["p99"] < fifo.tenants["light"]["p99"]


# -- CLI ---------------------------------------------------------------------


def test_cli_sched_smoke(tmp_path, capsys):
    prov = tmp_path / "sched.prov.json"
    decisions = tmp_path / "decisions.jsonl"
    rc = cli_main(["sched", "--jobs", "12", "--nodes", "2",
                   "--policy", "fair", "--seed", "3",
                   "--prov-out", str(prov),
                   "--decisions-out", str(decisions)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "policy=fair" in out and "utilization" in out
    assert prov.exists() and decisions.exists()
    lines = decisions.read_text().splitlines()
    entries = [json.loads(line) for line in lines]
    assert entries[-1]["kind"] == "stop"
    doc = json.loads(prov.read_text())
    assert doc["kind"] == "sched"


def test_cli_sched_trace_in(tmp_path, capsys):
    trace = synthetic_trace(2, 6, ("solo",), mean_interarrival=0.1)
    path = tmp_path / "trace.json"
    path.write_text(trace.dumps())
    rc = cli_main(["sched", "--trace-in", str(path), "--nodes", "2"])
    assert rc == 0
    assert "solo" in capsys.readouterr().out
