"""Scheduler behavior: admission, quotas, policies, preemption."""

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import AdmissionError
from repro.sched import JobSpec, JobState, Quota, Scheduler
from repro.sim.trace import Tracer
from repro.sim.virtual import VirtualTimeKernel


def make_sched(n_nodes=4, quotas=None, policy="fifo", **kwargs):
    kernel = VirtualTimeKernel(tracer=Tracer())
    cluster = Cluster(n_nodes=n_nodes, kernel=kernel)
    sched = Scheduler(cluster, quotas or {"t": Quota()}, policy, **kwargs)
    sched.start()
    return kernel, sched


def blocks(tenant="t", n_nodes=1, blocks=2, priority=0, **params):
    return JobSpec(tenant=tenant, kind="blocks", n_nodes=n_nodes,
                   priority=priority,
                   params={"blocks": blocks, "compute": 0.005, **params})


def run_all(kernel, sched, specs, schedule_extra=None):
    jobs = [sched.submit(spec) for spec in specs]
    if schedule_extra is not None:
        kernel.spawn(schedule_extra, name="extra")
    else:
        sched.close()
    kernel.run()
    return jobs


# -- admission ---------------------------------------------------------------


def test_unknown_tenant_rejected():
    _, sched = make_sched()
    with pytest.raises(AdmissionError, match="unknown tenant"):
        sched.submit(blocks(tenant="nobody"))


def test_unknown_kind_rejected():
    _, sched = make_sched()
    with pytest.raises(AdmissionError, match="unknown job kind"):
        sched.submit(JobSpec(tenant="t", kind="mystery"))


def test_impossible_node_demands_rejected():
    _, sched = make_sched(n_nodes=2,
                          quotas={"t": Quota(max_nodes=2)})
    with pytest.raises(AdmissionError, match="cluster has"):
        sched.submit(blocks(n_nodes=3))
    _, sched = make_sched(n_nodes=4, quotas={"t": Quota(max_nodes=2)})
    with pytest.raises(AdmissionError, match="capped at 2"):
        sched.submit(blocks(n_nodes=3))


def test_impossible_buffer_demand_rejected():
    _, sched = make_sched(
        quotas={"t": Quota(max_buffer_bytes=1024)})
    with pytest.raises(AdmissionError, match="buffer bytes"):
        sched.submit(blocks(block_bytes=1 << 20))


# -- lifecycle ---------------------------------------------------------------


def test_fifo_lifecycle_runs_everything():
    kernel, sched = make_sched()
    jobs = run_all(kernel, sched, [blocks() for _ in range(6)])
    assert all(j.state is JobState.DONE for j in jobs)
    assert all(j.attempts == 1 for j in jobs)
    kinds = [d["kind"] for d in sched.decisions]
    # pre-run submits precede the control loop's own start record
    assert "start" in kinds and kinds[-1] == "stop"
    assert kinds.count("finish") == 6


def test_failed_job_reports_error_and_releases_nodes():
    kernel, sched = make_sched(n_nodes=2)
    bad = JobSpec(tenant="t", kind="dsort", n_nodes=1,
                  params={"records_per_node": 64, "block_records": -5})
    jobs = run_all(kernel, sched, [bad, blocks()])
    assert jobs[0].state is JobState.FAILED
    assert jobs[0].error  # the rank's exception text survives
    assert jobs[1].state is JobState.DONE  # cluster still healthy


# -- quotas ------------------------------------------------------------------


def test_tenant_at_exact_node_quota_boundary():
    """max_nodes=2 on a 4-node cluster: two 1-node jobs run together,
    the third waits even though free nodes exist."""
    kernel, sched = make_sched(
        n_nodes=4, quotas={"t": Quota(max_nodes=2, max_inflight=8)})
    concurrency = []

    spec = blocks(blocks=4)
    jobs = [sched.submit(spec) for _ in range(4)]

    def watcher():
        while any(not j.state.terminal for j in jobs):
            running = sum(1 for j in jobs
                          if j.state is JobState.RUNNING)
            concurrency.append(running)
            kernel.sleep(0.003)
        sched.close()

    kernel.spawn(watcher, name="watch")
    kernel.run()
    assert all(j.state is JobState.DONE for j in jobs)
    assert max(concurrency) == 2  # exactly at the cap, never above


def test_inflight_quota_is_exact():
    kernel, sched = make_sched(
        n_nodes=4, quotas={"t": Quota(max_nodes=4, max_inflight=1)})
    jobs = [sched.submit(blocks(blocks=3)) for _ in range(3)]
    peak = []

    def watcher():
        while any(not j.state.terminal for j in jobs):
            peak.append(sum(1 for j in jobs
                            if j.state is JobState.RUNNING))
            kernel.sleep(0.003)
        sched.close()

    kernel.spawn(watcher, name="watch")
    kernel.run()
    assert max(peak) == 1


def test_exact_buffer_quota_admits():
    """A job demanding exactly the remaining buffer budget is admitted."""
    from repro.sched import get_kind

    spec = blocks()
    demand = get_kind("blocks").demand(spec)
    kernel, sched = make_sched(
        quotas={"t": Quota(max_buffer_bytes=demand)})
    jobs = run_all(kernel, sched, [spec])
    assert jobs[0].state is JobState.DONE


def test_quota_isolates_tenants():
    """One tenant exhausting its quota cannot block the other."""
    kernel, sched = make_sched(
        n_nodes=4,
        quotas={"big": Quota(max_nodes=2, max_inflight=2),
                "small": Quota(max_nodes=2)})
    specs = [blocks(tenant="big", blocks=6) for _ in range(6)]
    specs.append(blocks(tenant="small"))
    jobs = run_all(kernel, sched, specs)
    assert all(j.state is JobState.DONE for j in jobs)
    small = jobs[-1]
    # small's single job ran long before big's backlog drained
    assert small.end_time < max(j.end_time for j in jobs[:6])


# -- policies ----------------------------------------------------------------


def test_priority_policy_orders_queue():
    kernel, sched = make_sched(n_nodes=1, policy="priority")
    low = [sched.submit(blocks(priority=0)) for _ in range(2)]
    high = sched.submit(blocks(priority=9))
    sched.close()
    kernel.run()
    # the high-priority job jumped every queued low-priority job except
    # the one already running when it arrived
    assert high.end_time < low[1].end_time


def test_fair_share_weights_bias_placement():
    kernel, sched = make_sched(
        n_nodes=1, policy="fair",
        quotas={"heavy": Quota(weight=1.0), "light": Quota(weight=1.0)})
    heavy = [sched.submit(blocks(tenant="heavy", blocks=4))
             for _ in range(6)]
    light = sched.submit(blocks(tenant="light"))
    sched.close()
    kernel.run()
    # light's only job must not wait behind heavy's whole backlog
    assert light.end_time < heavy[-1].end_time


# -- preemption --------------------------------------------------------------


def test_preempting_the_only_running_job():
    kernel, sched = make_sched(n_nodes=2, policy="priority",
                               preempt=True)
    low = sched.submit(blocks(n_nodes=2, blocks=40, priority=0))

    def later():
        kernel.sleep(0.03)
        sched.submit(blocks(n_nodes=2, blocks=2, priority=5))
        sched.close()

    kernel.spawn(later, name="later")
    kernel.run()
    assert low.state is JobState.DONE
    assert low.preemptions == 1 and low.attempts == 2
    kinds = [d["kind"] for d in sched.decisions]
    assert "preempt-request" in kinds and "preempt-stop" in kinds


def test_twice_preempted_job_resumes_from_durable_blocks():
    """Preempt the same job twice; every attempt resumes exactly past
    the blocks already journaled, and the scenario is deterministic."""

    def scenario():
        kernel, sched = make_sched(n_nodes=1, policy="priority",
                                   preempt=True)
        victim = sched.submit(blocks(blocks=30, priority=0))

        def meddler():
            for _ in range(2):
                kernel.sleep(0.04)
                sched.submit(blocks(blocks=2, priority=5))
            sched.close()

        kernel.spawn(meddler, name="meddler")
        kernel.run()
        return victim, sched

    victim, sched = scenario()
    assert victim.state is JobState.DONE
    assert victim.preemptions == 2 and victim.attempts == 3
    worked = [victim.progress[f"worked.r0.a{a}"] for a in (1, 2, 3)]
    # no durable block was ever redone: the attempts partition the work
    assert sum(worked) == 30
    assert all(w > 0 for w in worked)

    victim2, sched2 = scenario()
    assert [victim2.progress[f"worked.r0.a{a}"] for a in (1, 2, 3)] \
        == worked
    assert sched2.decision_digest() == sched.decision_digest()


def test_sticky_replacement_reuses_original_nodes():
    kernel, sched = make_sched(n_nodes=3, policy="priority",
                               preempt=True)
    victim = sched.submit(blocks(n_nodes=2, blocks=40, priority=0))

    def later():
        kernel.sleep(0.03)
        sched.submit(blocks(n_nodes=2, blocks=2, priority=5))
        sched.close()

    kernel.spawn(later, name="later")
    kernel.run()
    assert victim.state is JobState.DONE
    places = [d for d in sched.decisions
              if d["kind"] == "place" and d["job"] == victim.id]
    assert len(places) == 2
    # both placements name the same nodes (the journals live there)
    assert places[0]["detail"].split("nodes=")[1] \
        == places[1]["detail"].split("nodes=")[1]


def test_manual_preempt_api():
    kernel, sched = make_sched(n_nodes=1)
    job = sched.submit(blocks(blocks=30))

    def meddler():
        kernel.sleep(0.03)
        assert sched.preempt(job.id, "drain for maintenance")
        assert not sched.preempt(9999)  # unknown job: no-op
        sched.close()

    kernel.spawn(meddler, name="meddler")
    kernel.run()
    assert job.state is JobState.DONE and job.preemptions == 1


# -- speculation budget ------------------------------------------------------


def test_speculation_budget_grants_and_denies():
    kernel, sched = make_sched(n_nodes=4, speculation_slots=1)
    spec = JobSpec(tenant="t", kind="dsort", n_nodes=2,
                   params={"records_per_node": 300, "recover": True,
                           "speculate": True})
    jobs = run_all(kernel, sched, [spec, spec])
    assert all(j.state is JobState.DONE for j in jobs)
    kinds = [d["kind"] for d in sched.decisions]
    assert "speculate-grant" in kinds
    # second concurrent job found the single slot taken
    assert "speculate-deny" in kinds
