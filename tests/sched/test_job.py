"""Unit tests for job specs, lifecycle records, and tenant quotas."""

import pytest

from repro.errors import SchedError
from repro.sched import Job, JobSpec, JobState, Quota


def test_quota_json_round_trip():
    quota = Quota(max_nodes=8, max_inflight=2,
                  max_buffer_bytes=1 << 20, weight=2.5)
    assert Quota.from_json(quota.to_json()) == quota


@pytest.mark.parametrize("kwargs", [
    {"max_nodes": 0},
    {"max_inflight": 0},
    {"max_buffer_bytes": 0},
    {"weight": 0.0},
    {"weight": -1.0},
])
def test_quota_validation(kwargs):
    with pytest.raises(SchedError):
        Quota(**kwargs)


def test_spec_json_round_trip():
    spec = JobSpec(tenant="alpha", kind="dsort", n_nodes=3,
                   params={"records_per_node": 512}, priority=7)
    assert JobSpec.from_json(spec.to_json()) == spec


@pytest.mark.parametrize("kwargs", [
    {"tenant": "", "kind": "blocks"},
    {"tenant": "t", "kind": ""},
    {"tenant": "t", "kind": "blocks", "n_nodes": 0},
])
def test_spec_validation(kwargs):
    with pytest.raises(SchedError):
        JobSpec(**kwargs)


def test_job_defaults_and_prefix():
    job = Job(id=17, spec=JobSpec(tenant="t", kind="blocks"))
    assert job.state is JobState.QUEUED
    assert not job.state.terminal
    assert job.prefix == "j17"
    assert job.attempts == 0 and job.preemptions == 0


def test_terminal_states():
    assert JobState.DONE.terminal and JobState.FAILED.terminal
    for state in (JobState.QUEUED, JobState.ADMITTED,
                  JobState.RUNNING, JobState.PREEMPTED):
        assert not state.terminal


def test_latency_is_submit_to_end():
    job = Job(id=0, spec=JobSpec(tenant="t", kind="blocks"),
              submit_time=1.5, end_time=4.0)
    assert job.latency == pytest.approx(2.5)
