"""Tests for single linear FG pipelines (paper Figures 1-2).

Covers buffer flow, recycling through a small pool, caboose shutdown for
both known and unknown round counts, and the latency-overlap property that
is FG's reason to exist.
"""

import numpy as np
import pytest

from repro.core import Buffer, FGProgram, Stage
from repro.errors import PipelineStructureError, ProcessFailed
from repro.sim import VirtualTimeKernel


def run_program(build):
    """Create kernel, let ``build(kernel)`` return an FGProgram, run it."""
    kernel = VirtualTimeKernel()
    prog = build(kernel)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    return kernel, prog


def test_buffers_flow_in_round_order():
    seen = []

    def build(kernel):
        prog = FGProgram(kernel)

        def fill(ctx, buf):
            buf.put(np.full(4, buf.round, dtype=np.uint8))
            return buf

        def record(ctx, buf):
            seen.append((buf.round, int(buf.view(np.uint8)[0])))
            return buf

        prog.add_pipeline("p", [Stage.map("fill", fill),
                                Stage.map("record", record)],
                          nbuffers=2, buffer_bytes=16, rounds=5)
        return prog

    run_program(build)
    assert seen == [(i, i) for i in range(5)]


def test_rounds_can_greatly_exceed_pool_size():
    """The paper: 'The number of rounds ... can greatly exceed the number
    of buffers' thanks to sink-to-source recycling."""
    counted = []

    def build(kernel):
        prog = FGProgram(kernel)
        prog.add_pipeline(
            "p", [Stage.map("count", lambda ctx, b: counted.append(b.round) or b)],
            nbuffers=2, buffer_bytes=8, rounds=100)
        return prog

    _, prog = run_program(build)
    assert counted == list(range(100))
    # exactly the pool's buffers circulated
    pipeline = prog.pipelines[0]
    assert len(prog.buffers_of(pipeline)) == 2


def test_pool_buffers_are_reused_not_reallocated():
    ids = set()

    def build(kernel):
        prog = FGProgram(kernel)

        def watch(ctx, buf):
            ids.add(id(buf))
            return buf

        prog.add_pipeline("p", [Stage.map("watch", watch)],
                          nbuffers=3, buffer_bytes=8, rounds=30)
        return prog

    run_program(build)
    assert len(ids) == 3


def test_pipeline_overlaps_stage_latencies():
    """Three stages, each 1 s per buffer, 10 buffers: a pipeline finishes
    in fill+drain (10 + 2) seconds, not the serial 30."""

    def build(kernel):
        prog = FGProgram(kernel)

        def work(ctx, buf):
            kernel.sleep(1.0)
            return buf

        prog.add_pipeline(
            "p",
            [Stage.map(f"s{i}", work) for i in range(3)],
            nbuffers=3, buffer_bytes=8, rounds=10)
        return prog

    kernel, _ = run_program(build)
    assert kernel.now() == pytest.approx(12.0)


def test_small_pool_throttles_pipeline():
    """With one buffer there is no overlap: 3 stages x 1 s x 5 rounds."""

    def build(kernel):
        prog = FGProgram(kernel)

        def work(ctx, buf):
            kernel.sleep(1.0)
            return buf

        prog.add_pipeline(
            "p", [Stage.map(f"s{i}", work) for i in range(3)],
            nbuffers=1, buffer_bytes=8, rounds=5)
        return prog

    kernel, _ = run_program(build)
    assert kernel.now() == pytest.approx(15.0)


def test_unknown_rounds_stage_declares_eos():
    """rounds=None: the first stage conveys the caboose when done (the
    shape of dsort's receive pipeline)."""
    downstream = []

    def build(kernel):
        prog = FGProgram(kernel)
        state = {"taken": 0}

        def take(ctx):
            pipeline = ctx.pipelines[0]
            while state["taken"] < 7:
                buf = ctx.accept()
                assert not buf.is_caboose
                buf.put(np.full(2, state["taken"], dtype=np.uint8))
                state["taken"] += 1
                ctx.convey(buf)
            ctx.convey_caboose(pipeline)

        def sink_side(ctx, buf):
            downstream.append(int(buf.view(np.uint8)[0]))
            return buf

        prog.add_pipeline("p", [Stage.source_driven("take", take),
                                Stage.map("rec", sink_side)],
                          nbuffers=3, buffer_bytes=8, rounds=None)
        return prog

    run_program(build)
    assert downstream == list(range(7))


def test_zero_rounds_pipeline_completes_immediately():
    def build(kernel):
        prog = FGProgram(kernel)
        prog.add_pipeline(
            "p", [Stage.map("never", lambda ctx, b: pytest.fail("ran"))],
            nbuffers=1, buffer_bytes=8, rounds=0)
        return prog

    kernel, _ = run_program(build)
    assert kernel.now() == 0.0


def test_map_stage_can_drop_buffers():
    """Returning None drops the buffer (it is simply not conveyed; the
    pool shrinks for the rest of the run)."""
    seen = []

    def build(kernel):
        prog = FGProgram(kernel)

        def maybe_drop(ctx, buf):
            if buf.round == 1:
                return None
            return buf

        def record(ctx, buf):
            seen.append(buf.round)
            return buf

        prog.add_pipeline("p", [Stage.map("drop", maybe_drop),
                                Stage.map("rec", record)],
                          nbuffers=4, buffer_bytes=8, rounds=4)
        return prog

    run_program(build)
    assert seen == [0, 2, 3]


def test_buffer_tags_travel_with_buffer():
    seen = []

    def build(kernel):
        prog = FGProgram(kernel)

        def tag(ctx, buf):
            buf.tags["column"] = buf.round * 10
            return buf

        def read_tag(ctx, buf):
            seen.append(buf.tags["column"])
            return buf

        prog.add_pipeline("p", [Stage.map("tag", tag),
                                Stage.map("read", read_tag)],
                          nbuffers=2, buffer_bytes=8, rounds=3)
        return prog

    run_program(build)
    assert seen == [0, 10, 20]


def test_tags_cleared_on_recycle():
    def build(kernel):
        prog = FGProgram(kernel)

        def check(ctx, buf):
            assert buf.tags == {}, "recycled buffer kept stale tags"
            buf.tags["x"] = buf.round
            return buf

        prog.add_pipeline("p", [Stage.map("check", check)],
                          nbuffers=1, buffer_bytes=8, rounds=5)
        return prog

    run_program(build)


def test_stage_exception_propagates_as_failure():
    def build(kernel):
        prog = FGProgram(kernel)

        def bad(ctx, buf):
            raise RuntimeError("stage blew up")

        prog.add_pipeline("p", [Stage.map("bad", bad)],
                          nbuffers=1, buffer_bytes=8, rounds=3)
        return prog

    kernel = VirtualTimeKernel()
    prog = build(kernel)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed):
        kernel.run()


def test_aux_buffers_allocated_when_requested():
    def build(kernel):
        prog = FGProgram(kernel)

        def use_aux(ctx, buf):
            assert buf.aux is not None
            assert len(buf.aux) == buf.capacity
            buf.aux[:4] = 7  # scratch space for out-of-place permute
            return buf

        prog.add_pipeline("p", [Stage.map("aux", use_aux)],
                          nbuffers=1, buffer_bytes=32, rounds=2,
                          aux_buffers=True)
        return prog

    run_program(build)


def test_empty_program_rejected():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    kernel.spawn(prog.run)
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert isinstance(exc_info.value.original, PipelineStructureError)


def test_pipeline_validation_errors():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    stage = Stage.map("s", lambda ctx, b: b)
    with pytest.raises(PipelineStructureError):
        prog.add_pipeline("p", [], nbuffers=1, buffer_bytes=8)
    with pytest.raises(PipelineStructureError):
        prog.add_pipeline("p", [stage], nbuffers=0, buffer_bytes=8)
    with pytest.raises(PipelineStructureError):
        prog.add_pipeline("p", [stage], nbuffers=1, buffer_bytes=0)
    with pytest.raises(PipelineStructureError):
        prog.add_pipeline("p", [stage], nbuffers=1, buffer_bytes=8,
                          rounds=-1)
    with pytest.raises(PipelineStructureError):
        prog.add_pipeline("p", [stage, stage], nbuffers=1, buffer_bytes=8)


def test_thread_count_linear_pipeline():
    """A 3-stage pipeline costs 5 threads: source + 3 stages + sink."""

    def build(kernel):
        prog = FGProgram(kernel)
        prog.add_pipeline(
            "p", [Stage.map(f"s{i}", lambda ctx, b: b) for i in range(3)],
            nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    _, prog = run_program(build)
    assert prog.thread_count == 5


def test_stage_stats_recorded():
    def build(kernel):
        prog = FGProgram(kernel)

        def slow(ctx, buf):
            kernel.sleep(2.0)
            return buf

        prog.add_pipeline("p", [Stage.map("slow", slow)],
                          nbuffers=1, buffer_bytes=8, rounds=3)
        return prog

    _, prog = run_program(build)
    stats = prog.stage_stats()["slow"]
    assert stats.accepts == 4  # 3 data + caboose
    assert stats.conveys == 3
    assert stats.busy == pytest.approx(6.0)


def test_buffer_view_and_put_roundtrip():
    def build(kernel):
        prog = FGProgram(kernel)

        def fill(ctx, buf):
            buf.put(np.arange(4, dtype="<u4"))
            return buf

        def check(ctx, buf):
            np.testing.assert_array_equal(buf.view("<u4"),
                                          np.arange(4, dtype="<u4"))
            assert buf.size == 16
            return buf

        prog.add_pipeline("p", [Stage.map("fill", fill),
                                Stage.map("check", check)],
                          nbuffers=1, buffer_bytes=64, rounds=2)
        return prog

    run_program(build)
