"""Stage replication tests: sequencer ordering, caboose relay, runtime
replica growth, and determinism.

The adversarial-timing tests exploit the virtual clock: replicas sleep
*longer* on earlier rounds, so completion order is the reverse of ticket
order and only the sequencer stands between the pipeline and scrambled
output.
"""

import pytest

from repro.core import FGProgram, Stage
from repro.errors import (
    PipelineFailed,
    PipelineStructureError,
    ProcessFailed,
    StageError,
)
from repro.sim import VirtualTimeKernel


def build_replicated(kernel, *, replicas, rounds, work_fn, lint_ignore=None,
                     nbuffers=None):
    """[work (replicated) -> collect] with ``collect`` recording rounds."""
    prog = FGProgram(kernel, name="rep", lint_ignore=lint_ignore)
    order = []

    def collect(ctx, buf):
        order.append(buf.round)
        return buf

    prog.add_pipeline(
        "p", [Stage.map("work", work_fn), Stage.map("collect", collect)],
        nbuffers=nbuffers if nbuffers is not None else max(replicas + 1, 4),
        buffer_bytes=8, rounds=rounds,
        replicas={"work": replicas})
    return prog, order


def test_sequencer_restores_order_under_adversarial_timing():
    kernel = VirtualTimeKernel()
    rounds = 9
    completions = []

    def work(ctx, buf):
        # earlier rounds take longer: replicas finish in reverse order
        kernel.sleep(0.01 * (rounds - buf.round))
        completions.append(buf.round)
        return buf

    # FG109 rightly flags the completions-list instrumentation; it is
    # test-only bookkeeping, so suppress the rule for this program
    prog, order = build_replicated(kernel, replicas=3, rounds=rounds,
                                   work_fn=work, lint_ignore={"FG109"})
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    # downstream saw every round, in emission order
    assert order == list(range(rounds))
    # and the timing really was adversarial: at least one pair of rounds
    # completed out of ticket order inside the replica set
    assert completions != sorted(completions)


def test_caboose_relay_terminates_every_replica():
    kernel = VirtualTimeKernel()

    def work(ctx, buf):
        kernel.sleep(0.01)
        return buf

    prog, order = build_replicated(kernel, replicas=4, rounds=6,
                                   work_fn=work)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert order == list(range(6))
    assert prog.finished
    (rset,) = prog.replica_sets()
    assert rset.finished
    assert rset.live == 0
    assert rset.total == 4


def test_replica_dropping_a_buffer_keeps_order():
    kernel = VirtualTimeKernel()
    rounds = 8

    def work(ctx, buf):
        kernel.sleep(0.01 * (rounds - buf.round))
        if buf.round % 2 == 1:
            return None  # drop odd rounds; the skip envelope keeps order
        return buf

    prog, order = build_replicated(kernel, replicas=3, rounds=rounds,
                                   work_fn=work)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert order == [0, 2, 4, 6]


def test_add_replica_midrun_preserves_order_and_counts():
    kernel = VirtualTimeKernel()
    rounds = 10

    def work(ctx, buf):
        kernel.sleep(0.05)
        return buf

    prog, order = build_replicated(kernel, replicas=1, rounds=rounds,
                                   work_fn=work)

    grown = []

    def tuner():
        kernel.sleep(0.06)
        p = prog.pipelines[0]
        grown.append(prog.add_replica(p, "work"))
        grown.append(prog.add_replica(p, "work"))

    kernel.spawn(prog.run, name="driver")
    kernel.spawn(tuner, name="tuner")
    kernel.run()
    assert grown == [True, True]
    assert order == list(range(rounds))
    (rset,) = prog.replica_sets()
    assert rset.total == 3


def test_add_replica_after_finish_is_refused():
    kernel = VirtualTimeKernel()

    def work(ctx, buf):
        return buf

    prog, order = build_replicated(kernel, replicas=2, rounds=3,
                                   work_fn=work)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert prog.finished
    assert prog.add_replica(prog.pipelines[0], "work") is False


def test_add_replica_requires_declared_stage():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel, name="rep")
    prog.add_pipeline("p", [Stage.map("only", lambda ctx, buf: buf)],
                      nbuffers=2, buffer_bytes=8, rounds=1)
    kernel.spawn(prog.start, name="driver")
    kernel.run()
    with pytest.raises(PipelineStructureError):
        prog.replica_set(prog.pipelines[0], "only")


def test_replica_conveying_manually_is_a_stage_error():
    kernel = VirtualTimeKernel()

    def work(ctx, buf):
        ctx.convey(buf)  # forbidden: the sequencer owns conveyance
        return None

    # FG109 catches this statically; suppress it to test the runtime net
    prog, _ = build_replicated(kernel, replicas=2, rounds=3, work_fn=work,
                               lint_ignore={"FG109"})
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    failed = exc_info.value.original
    cause = (failed.failures[0].cause
             if isinstance(failed, PipelineFailed) else failed)
    assert isinstance(cause, StageError)
    assert "FG109" in str(cause)


def test_replica_failure_propagates():
    kernel = VirtualTimeKernel()

    def work(ctx, buf):
        if buf.round == 2:
            raise RuntimeError("replica boom")
        return buf

    prog, _ = build_replicated(kernel, replicas=2, rounds=5, work_fn=work)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed):
        kernel.run()


def test_replicated_run_is_deterministic():
    def one_run():
        kernel = VirtualTimeKernel()
        rounds = 7

        def work(ctx, buf):
            kernel.sleep(0.01 * ((buf.round * 3) % 5 + 1))
            return buf

        prog, order = build_replicated(kernel, replicas=3, rounds=rounds,
                                       work_fn=work)
        kernel.spawn(prog.run, name="driver")
        kernel.run()
        return order, kernel.now()

    first = one_run()
    second = one_run()
    assert first == second
    assert first[0] == list(range(7))
