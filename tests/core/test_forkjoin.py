"""Tests for fork-join pipelines built on intersecting primitives."""

import numpy as np
import pytest

from repro.core import FGProgram, Stage
from repro.core.forkjoin import add_fork_join
from repro.errors import PipelineStructureError, ProcessFailed
from repro.sim import VirtualTimeKernel


def build_parity_forkjoin(kernel, n_rounds, branch_sleep=None,
                          collected=None):
    """Route even rounds to branch 'even', odd to 'odd'."""
    prog = FGProgram(kernel)

    def fill(ctx, buf):
        buf.put(np.full(4, buf.round, dtype="<u4"))
        buf.tags["origin_round"] = buf.round
        return buf

    def make_branch_stage(tag):
        def fn(ctx, buf):
            if branch_sleep:
                kernel.sleep(branch_sleep[tag])
            values = buf.view("<u4")
            buf.put(values * np.uint32(2) if tag == "even"
                    else values * np.uint32(3))
            return buf
        return fn

    def collect(ctx, buf):
        if collected is not None:
            collected.append((buf.tags["origin_round"],
                              int(buf.view("<u4")[0])))
        return buf

    fj = add_fork_join(
        prog, "fj",
        pre=[Stage.map("fill", fill)],
        branches={"even": [Stage.map("beven", make_branch_stage("even"))],
                  "odd": [Stage.map("bodd", make_branch_stage("odd"))]},
        post=[Stage.map("collect", collect)],
        route=lambda buf: "even" if buf.round % 2 == 0 else "odd",
        nbuffers=3, buffer_bytes=32, rounds=n_rounds)
    return prog, fj


def test_forkjoin_routes_and_restores_round_order():
    kernel = VirtualTimeKernel()
    collected = []
    prog, _ = build_parity_forkjoin(kernel, 8, collected=collected)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert [r for r, _ in collected] == list(range(8))
    for r, value in collected:
        assert value == (2 * r if r % 2 == 0 else 3 * r)


def test_forkjoin_zero_rounds():
    kernel = VirtualTimeKernel()
    collected = []
    prog, _ = build_parity_forkjoin(kernel, 0, collected=collected)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert collected == []


def test_forkjoin_single_branch_receives_everything():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    seen = []

    fj = add_fork_join(
        prog, "fj",
        pre=[Stage.map("fill",
                       lambda ctx, b: b.put(np.zeros(1, np.uint8)) or b)],
        branches={"only": [Stage.map(
            "b", lambda ctx, b: seen.append(b.round) or b)]},
        post=[Stage.map("out", lambda ctx, b: b)],
        route=lambda buf: "only",
        nbuffers=2, buffer_bytes=8, rounds=5)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert sorted(seen) == list(range(5))
    assert set(fj.branches) == {"only"}


def test_branches_overlap_in_time():
    """Even branch takes 1 s/buffer, odd branch 1 s/buffer: with both
    branches running concurrently, 8 buffers take ~4+fill seconds, not 8."""
    kernel = VirtualTimeKernel()
    prog, _ = build_parity_forkjoin(
        kernel, 8, branch_sleep={"even": 1.0, "odd": 1.0})
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert kernel.now() < 6.0  # serial would be >= 8


def test_unknown_branch_from_route_fails_cleanly():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    add_fork_join(
        prog, "fj",
        pre=[Stage.map("fill",
                       lambda ctx, b: b.put(np.zeros(1, np.uint8)) or b)],
        branches={"a": [Stage.map("ba", lambda ctx, b: b)]},
        post=[Stage.map("out", lambda ctx, b: b)],
        route=lambda buf: "nope",
        nbuffers=1, buffer_bytes=8, rounds=1)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert "unknown" in str(exc_info.value.original)


def test_forkjoin_validation():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    with pytest.raises(PipelineStructureError):
        add_fork_join(prog, "fj", pre=[Stage.map("p", lambda c, b: b)],
                      branches={}, post=[], route=lambda b: "x",
                      nbuffers=1, buffer_bytes=8, rounds=1)
    with pytest.raises(PipelineStructureError):
        add_fork_join(prog, "fj", pre=[],
                      branches={"a": [Stage.map("s", lambda c, b: b)]},
                      post=[], route=lambda b: "a",
                      nbuffers=1, buffer_bytes=8, rounds=1)


def test_forkjoin_thread_budget():
    """fork and join are single threads despite intersecting everything."""
    kernel = VirtualTimeKernel()
    prog, fj = build_parity_forkjoin(kernel, 2)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    # trunk: source+fill+sink = 3; branches: (source+stage+sink) x 2 = 6
    # post: source+collect+sink = 3; fork = 1; join = 1
    assert prog.thread_count == 14


def test_forkjoin_different_branch_buffer_geometry():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    sizes = {}

    def probe(ctx, buf):
        sizes["branch"] = buf.capacity
        return buf

    add_fork_join(
        prog, "fj",
        pre=[Stage.map("fill",
                       lambda ctx, b: b.put(np.zeros(1, np.uint8)) or b)],
        branches={"a": [Stage.map("probe", probe)]},
        post=[Stage.map("out", lambda ctx, b: b)],
        route=lambda buf: "a",
        nbuffers=2, buffer_bytes=16, rounds=1,
        branch_nbuffers=5, branch_buffer_bytes=64)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert sizes["branch"] == 64
