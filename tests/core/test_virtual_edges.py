"""Edge cases of virtual stages: mixed families, EOS from members,
single-member groups."""

import pytest

from repro.core import FGProgram, Stage
from repro.sim import VirtualTimeKernel


def test_single_member_virtual_group_still_works():
    kernel = VirtualTimeKernel()
    seen = []
    prog = FGProgram(kernel)
    stage = Stage.map("only", lambda ctx, b: seen.append(b.round) or b,
                      virtual=True, virtual_group="g")
    prog.add_pipeline("p", [stage], nbuffers=1, buffer_bytes=8, rounds=3)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert seen == [0, 1, 2]
    assert prog.thread_count == 3  # source group + sink group + stage


def test_virtual_and_plain_pipelines_coexist():
    kernel = VirtualTimeKernel()
    seen = {"virtual": [], "plain": []}
    prog = FGProgram(kernel)
    for i in range(3):
        stage = Stage.map(
            f"v{i}", lambda ctx, b: seen["virtual"].append(b.round) or b,
            virtual=True, virtual_group="g")
        prog.add_pipeline(f"vp{i}", [stage], nbuffers=1, buffer_bytes=8,
                          rounds=2)
    prog.add_pipeline(
        "plain",
        [Stage.map("pl", lambda ctx, b: seen["plain"].append(b.round) or b)],
        nbuffers=1, buffer_bytes=8, rounds=2)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert sorted(seen["virtual"]) == [0, 0, 0, 1, 1, 1]
    assert seen["plain"] == [0, 1]
    # 3 family threads + 3 plain-pipeline threads
    assert prog.thread_count == 6


def test_two_disjoint_virtual_families():
    """Groups that share no pipelines form separate families, each with
    its own source/sink group."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    for fam in ("a", "b"):
        for i in range(2):
            stage = Stage.map(f"{fam}{i}", lambda ctx, b: b, virtual=True,
                              virtual_group=f"group-{fam}")
            prog.add_pipeline(f"{fam}-p{i}", [stage], nbuffers=1,
                              buffer_bytes=8, rounds=1)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    # per family: source group + sink group + stage group = 3; two families
    assert prog.thread_count == 6


def test_virtual_member_can_declare_eos():
    """A rounds=None virtual pipeline whose member decides when to stop."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    downstream = []

    def make_member(limit):
        state = {"count": 0}

        def fn(ctx, buf):
            if state["count"] == limit:
                ctx.convey_caboose(ctx.pipelines[0])
                return None
            state["count"] += 1
            buf.tags["n"] = state["count"]
            return buf
        return fn

    collector = Stage.source_driven("collect", None)
    pipelines = []
    for i, limit in enumerate((2, 4)):
        stage = Stage.map(f"gen{i}", make_member(limit), virtual=True,
                          virtual_group="gen")
        pipelines.append(prog.add_pipeline(
            f"p{i}", [stage, collector], nbuffers=2, buffer_bytes=8,
            rounds=None))

    def collect(ctx):
        live = set(range(len(pipelines)))
        while live:
            for i in sorted(live):
                buf = ctx.accept(pipelines[i])
                if buf.is_caboose:
                    ctx.forward(buf)
                    live.discard(i)
                else:
                    downstream.append((i, buf.tags["n"]))
                    ctx.convey(buf)

    collector.fn = collect
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert sorted(downstream) == [(0, 1), (0, 2), (1, 1), (1, 2), (1, 3),
                                  (1, 4)]
