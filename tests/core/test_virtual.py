"""Tests for virtual stages and virtual pipelines (paper Figure 5b).

k identical stages across k pipelines share a single thread and a single
input queue, and FG automatically virtualizes the sources and sinks of
those pipelines — so thread count is O(1) in k, not Θ(k).
"""

import numpy as np
import pytest

from repro.core import FGProgram, Stage
from repro.errors import PipelineStructureError, ProcessFailed
from repro.sim import VirtualTimeKernel


def build_virtual_program(kernel, k, rounds_per_pipeline=3):
    """k virtual pipelines, each tagging buffers with its own id."""
    prog = FGProgram(kernel)
    seen = {i: [] for i in range(k)}

    def make_fn(i):
        def fn(ctx, buf):
            seen[i].append(buf.round)
            return buf
        return fn

    for i in range(k):
        stage = Stage.map(f"acq{i}", make_fn(i), virtual=True,
                          virtual_group="acquire")
        prog.add_pipeline(f"v{i}", [stage], nbuffers=2, buffer_bytes=8,
                          rounds=rounds_per_pipeline)
    return prog, seen


def test_virtual_pipelines_all_complete():
    kernel = VirtualTimeKernel()
    prog, seen = build_virtual_program(kernel, k=5, rounds_per_pipeline=4)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert all(seen[i] == [0, 1, 2, 3] for i in range(5))


def test_thread_count_constant_in_k():
    """The headline Figure 5(b) property: threads do not grow with k."""
    counts = {}
    for k in (2, 10, 40):
        kernel = VirtualTimeKernel()
        prog, _ = build_virtual_program(kernel, k=k, rounds_per_pipeline=1)
        kernel.spawn(prog.run, name="driver")
        kernel.run()
        counts[k] = prog.thread_count
    # one source group + one sink group + one stage group = 3, for any k
    assert counts == {2: 3, 10: 3, 40: 3}


def test_nonvirtual_equivalent_uses_theta_k_threads():
    """Control case: the same program without virtual marking spends
    3 threads per pipeline."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    for i in range(10):
        prog.add_pipeline(f"v{i}",
                          [Stage.map(f"acq{i}", lambda ctx, b: b)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert prog.thread_count == 30


def test_virtual_pipelines_with_differing_round_counts():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    seen = {}

    for i, rounds in enumerate([1, 4, 2]):
        def make_fn(i):
            def fn(ctx, buf):
                seen.setdefault(i, []).append(buf.round)
                return buf
            return fn
        stage = Stage.map(f"a{i}", make_fn(i), virtual=True,
                          virtual_group="acquire")
        prog.add_pipeline(f"v{i}", [stage], nbuffers=2, buffer_bytes=8,
                          rounds=rounds)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert seen == {0: [0], 1: [0, 1, 2, 3], 2: [0, 1]}


def test_virtual_stage_feeding_common_merge_stage():
    """The full Figure 5(b) shape: virtual acquire stages + one merge
    stage where the vertical pipelines intersect the horizontal one."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    runs = {0: [1, 4], 1: [2, 5], 2: [3, 6]}
    merged = []

    def make_read(i):
        def read(ctx, buf):
            buf.put(np.asarray([runs[i][buf.round]], dtype="<i8"))
            return buf
        return read

    merge_stage = Stage.source_driven("merge", None)
    verticals = []
    for i in range(3):
        read = Stage.map(f"read{i}", make_read(i), virtual=True,
                         virtual_group="read")
        p = prog.add_pipeline(f"v{i}", [read, merge_stage],
                              nbuffers=1, buffer_bytes=8, rounds=2)
        verticals.append(p)

    def collect(ctx, buf):
        merged.extend(int(x) for x in buf.view("<i8"))
        return buf

    horizontal = prog.add_pipeline(
        "h", [merge_stage, Stage.map("collect", collect)],
        nbuffers=2, buffer_bytes=16, rounds=None)

    def merge(ctx):
        heads = {}
        for i, p in enumerate(verticals):
            buf = ctx.accept(p)
            if buf.is_caboose:
                ctx.forward(buf)
            else:
                heads[i] = buf
        while heads:
            i = min(heads, key=lambda k: heads[k].view("<i8")[0])
            buf = heads.pop(i)
            out = ctx.accept(horizontal)
            out.put(buf.view("<i8").copy())
            ctx.convey(out)
            ctx.convey(buf)
            nxt = ctx.accept(verticals[i])
            if nxt.is_caboose:
                ctx.forward(nxt)
            else:
                heads[i] = nxt
        ctx.convey_caboose(horizontal)

    merge_stage.fn = merge
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert merged == [1, 2, 3, 4, 5, 6]
    # verticals: 1 source group + 1 sink group + 1 read group = 3
    # horizontal: source + collect + sink = 3; merge = 1
    assert prog.thread_count == 7


def test_sharing_one_virtual_stage_object_rejected():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    stage = Stage.map("v", lambda ctx, b: b, virtual=True)
    prog.add_pipeline("a", [stage], nbuffers=1, buffer_bytes=8, rounds=1)
    prog.add_pipeline("b", [stage], nbuffers=1, buffer_bytes=8, rounds=1)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert isinstance(exc_info.value.original, PipelineStructureError)


def test_virtual_stage_must_be_map_style():
    with pytest.raises(PipelineStructureError):
        Stage("v", lambda ctx: None, style="full", virtual=True)


def test_same_virtual_group_twice_in_one_pipeline_rejected():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    s1 = Stage.map("s1", lambda ctx, b: b, virtual=True, virtual_group="g")
    s2 = Stage.map("s2", lambda ctx, b: b, virtual=True, virtual_group="g")
    prog.add_pipeline("p", [s1, s2], nbuffers=1, buffer_bytes=8, rounds=1)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert isinstance(exc_info.value.original, PipelineStructureError)


def test_two_virtual_groups_in_series():
    """Pipelines with two virtual stages each: both groups share threads,
    and buffers flow group 1 -> group 2 correctly."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    out = {i: [] for i in range(4)}

    for i in range(4):
        def make_first(i):
            def fn(ctx, buf):
                buf.tags["v"] = 100 * i + buf.round
                return buf
            return fn

        def make_second(i):
            def fn(ctx, buf):
                out[i].append(buf.tags["v"])
                return buf
            return fn

        first = Stage.map(f"f{i}", make_first(i), virtual=True,
                          virtual_group="first")
        second = Stage.map(f"s{i}", make_second(i), virtual=True,
                           virtual_group="second")
        prog.add_pipeline(f"p{i}", [first, second],
                          nbuffers=2, buffer_bytes=8, rounds=3)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert out == {i: [100 * i, 100 * i + 1, 100 * i + 2] for i in range(4)}
    # 2 stage groups + 1 source group + 1 sink group
    assert prog.thread_count == 4


def test_hundreds_of_virtual_pipelines():
    """The motivating scale: hundreds of runs without hundreds of threads."""
    kernel = VirtualTimeKernel()
    prog, seen = build_virtual_program(kernel, k=300, rounds_per_pipeline=2)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert prog.thread_count == 3
    assert all(seen[i] == [0, 1] for i in range(300))
