"""Graceful teardown: a failed stage poisons only its own pipeline.

The acceptance property of the robustness layer at the FG level: when a
stage raises in one of two disjoint pipelines, the sibling pipeline runs
to completion, the failed pipeline's stranded buffers return to their
pool, and :meth:`FGProgram.wait` raises :class:`PipelineFailed` whose
causal chain names exactly the failed pipeline and stage.
"""

import pytest

from repro.core import FGProgram, Stage
from repro.errors import PipelineFailed, StageFailure
from repro.sim import VirtualTimeKernel


def run_program(prog, kernel):
    failure = []

    def driver():
        try:
            prog.run()
        except PipelineFailed as exc:
            failure.append(exc)

    kernel.spawn(driver, name="driver")
    kernel.run()
    return failure[0] if failure else None


def test_failed_stage_poisons_only_its_own_pipeline():
    kernel = VirtualTimeKernel()
    kernel.enable_metrics()
    prog = FGProgram(kernel, name="tear")
    good_rounds = []

    def bad(ctx, buf):
        if buf.round == 1:
            raise RuntimeError("stage blew up")
        return buf

    def good(ctx, buf):
        kernel.sleep(1.0)  # sibling is still mid-flight when bad dies
        good_rounds.append(buf.round)
        return buf

    prog.add_pipeline("doomed", [Stage.map("bad", bad)],
                      nbuffers=2, buffer_bytes=8, rounds=6)
    prog.add_pipeline("healthy", [Stage.map("good", good)],
                      nbuffers=2, buffer_bytes=8, rounds=6)
    failure = run_program(prog, kernel)

    # the sibling pipeline completed all of its rounds
    assert good_rounds == list(range(6))
    # the failure names exactly the doomed pipeline and its stage
    assert isinstance(failure, PipelineFailed)
    assert failure.pipelines == ["doomed"]
    assert all(isinstance(f, StageFailure) for f in failure.failures)
    assert failure.failures[0].stage == "bad"
    assert isinstance(failure.failures[0].cause, RuntimeError)
    assert failure.__cause__ is failure.failures[0].cause
    assert "doomed" in str(failure) and "stage blew up" in str(failure)

    # teardown is observable: poisoned once, and no counter for the
    # healthy sibling
    counters = kernel.metrics.snapshot()["counters"]
    assert counters["fg.tear.pipeline.doomed.poisoned"]["value"] == 1
    assert "fg.tear.pipeline.healthy.poisoned" not in counters


def test_stranded_buffers_drain_back_to_the_pool():
    kernel = VirtualTimeKernel()
    kernel.enable_metrics()
    prog = FGProgram(kernel, name="drain")
    accepted = []

    def dead_end(ctx, buf):
        accepted.append(buf.round)
        raise ValueError("dies on first buffer")

    prog.add_pipeline("p", [Stage.map("dead-end", dead_end)],
                      nbuffers=4, buffer_bytes=8, rounds=8)
    failure = run_program(prog, kernel)

    assert isinstance(failure, PipelineFailed)
    assert accepted == [0]
    # every in-flight buffer (minus the one consumed by the failing call,
    # which unwound with the stage) was drained back to the recycle pool
    counters = kernel.metrics.snapshot()["counters"]
    assert counters["fg.drain.pipeline.p.buffers_drained"]["value"] >= 1


def test_multiple_failures_accumulate_in_failure_order():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)

    def die_at(when, label):
        def fn(ctx, buf):
            kernel.sleep(when)
            raise RuntimeError(label)
        return fn

    prog.add_pipeline("first", [Stage.map("s1", die_at(1.0, "one"))],
                      nbuffers=1, buffer_bytes=8, rounds=2)
    prog.add_pipeline("second", [Stage.map("s2", die_at(2.0, "two"))],
                      nbuffers=1, buffer_bytes=8, rounds=2)
    failure = run_program(prog, kernel)

    assert isinstance(failure, PipelineFailed)
    assert failure.pipelines == ["first", "second"]
    assert [str(f.cause) for f in failure.failures] == ["one", "two"]
    # __cause__ chains to the *first* root cause
    assert str(failure.__cause__) == "one"


def test_failure_in_shared_stage_poisons_the_whole_family():
    """A stage shared by an intersecting-pipeline family takes every
    pipeline it serves down with it, and wait() reports each one."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)

    def merge(ctx):
        ctx.accept(left)
        ctx.accept(right)
        raise RuntimeError("merge failed")

    shared = Stage.source_driven("merge", merge)
    left = prog.add_pipeline("left", [shared], nbuffers=2,
                             buffer_bytes=8, rounds=2)
    right = prog.add_pipeline("right", [shared], nbuffers=2,
                              buffer_bytes=8, rounds=2)
    failure = run_program(prog, kernel)
    assert isinstance(failure, PipelineFailed)
    assert sorted(failure.pipelines) == ["left", "right"]


def test_fault_free_program_raises_nothing():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    prog.add_pipeline("ok", [Stage.map("id", lambda ctx, buf: buf)],
                      nbuffers=2, buffer_bytes=8, rounds=3)
    assert run_program(prog, kernel) is None
