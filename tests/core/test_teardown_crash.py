"""Teardown under a node crash: poisoning stays pipeline-local.

The recovery manager (repro.recover) leans on one FG-level guarantee:
when a node crash surfaces as a permanent fault inside one pipeline's
stage, only that pipeline is poisoned — a sibling pipeline of the same
program that is still draining finishes every round, and the program's
buffer pools come back clean under FGSan.  Without this, partition
re-assignment could not reuse the surviving pipelines' teardown path.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core import FGProgram, Stage
from repro.errors import FaultInjected, PipelineFailed, RetryExhausted
from repro.faults import FaultPlan
from repro.sim import VirtualTimeKernel


def test_node_crash_mid_drain_poisons_only_its_own_pipeline():
    kernel = VirtualTimeKernel()
    kernel.enable_metrics()
    # rank 0 dies at t=0.02; the doomed pipeline's stage is the only
    # one touching its (now dead) disk
    plan = FaultPlan(seed=3).with_node_crash(rank=0, at=0.02)
    cluster = Cluster(n_nodes=2, kernel=kernel, fault_plan=plan)
    node = cluster.nodes[0]
    drained = []
    failure = []

    def driver():
        prog = FGProgram(kernel, name="crashy", sanitize=True)
        payload = np.zeros(64, dtype=np.uint8)

        def doomed(ctx, buf):
            node.disk.write("scratch", 0, payload)
            return buf

        def sibling(ctx, buf):
            kernel.sleep(0.01)  # still mid-drain when the node dies
            drained.append(buf.round)
            return buf

        prog.add_pipeline("doomed", [Stage.map("ops", doomed)],
                          nbuffers=2, buffer_bytes=8, rounds=8)
        prog.add_pipeline("sibling", [Stage.map("drain", sibling)],
                          nbuffers=2, buffer_bytes=8, rounds=8)
        try:
            prog.run()
        except PipelineFailed as exc:
            failure.append(exc)

    kernel.spawn(driver, name="driver")
    kernel.run()

    # the sibling pipeline drained every round despite the crash
    assert drained == list(range(8))
    # the failure names exactly the doomed pipeline, caused by the crash
    exc = failure[0] if failure else None
    assert isinstance(exc, PipelineFailed)
    assert exc.pipelines == ["doomed"]
    cause = exc.failures[0].cause
    if isinstance(cause, RetryExhausted):
        cause = cause.last
    assert isinstance(cause, FaultInjected)
    assert cause.permanent
    assert "crash" in str(cause)
    # poisoning is observable and pipeline-local
    counters = kernel.metrics.snapshot()["counters"]
    assert counters["fg.crashy.pipeline.doomed.poisoned"]["value"] == 1
    assert "fg.crashy.pipeline.sibling.poisoned" not in counters
    # FGSan audited the teardown (sanitize=True): reaching this point
    # without a SanitizerError means every stranded buffer made it back
    # to its pool
    assert counters["fg.crashy.pipeline.doomed.buffers_drained"][
        "value"] >= 1
