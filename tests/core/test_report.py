"""Tests for FGProgram reporting and buffer-memory accounting."""

import pytest

from repro.core import FGProgram, Stage
from repro.sim import VirtualTimeKernel


def run_simple_program(kernel, nbuffers=2, buffer_bytes=128, aux=False):
    prog = FGProgram(kernel, name="reportme")

    def work(ctx, buf):
        kernel.sleep(0.5)
        return buf

    prog.add_pipeline("p", [Stage.map("worker", work)],
                      nbuffers=nbuffers, buffer_bytes=buffer_bytes,
                      rounds=4, aux_buffers=aux)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    return prog


def test_total_buffer_bytes_counts_pools():
    kernel = VirtualTimeKernel()
    prog = run_simple_program(kernel, nbuffers=3, buffer_bytes=100)
    assert prog.total_buffer_bytes == 300


def test_total_buffer_bytes_counts_aux():
    kernel = VirtualTimeKernel()
    prog = run_simple_program(kernel, nbuffers=2, buffer_bytes=100,
                              aux=True)
    assert prog.total_buffer_bytes == 400


def test_total_buffer_bytes_sums_pipelines():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    prog.add_pipeline("a", [Stage.map("sa", lambda c, b: b)],
                      nbuffers=2, buffer_bytes=10, rounds=1)
    prog.add_pipeline("b", [Stage.map("sb", lambda c, b: b)],
                      nbuffers=4, buffer_bytes=100, rounds=1)
    assert prog.total_buffer_bytes == 420


def test_memory_is_fixed_regardless_of_rounds():
    """The paper's claim: pools, not data volume, bound buffer memory."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    prog.add_pipeline("p", [Stage.map("s", lambda c, b: b)],
                      nbuffers=2, buffer_bytes=64, rounds=10_000)
    before = prog.total_buffer_bytes
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert prog.total_buffer_bytes == before == 128
    # really did run 10k rounds through 2 buffers
    assert prog.stage_stats()["s"].conveys == 10_000


def test_report_contains_stage_rows():
    kernel = VirtualTimeKernel()
    prog = run_simple_program(kernel)
    report = prog.report()
    assert "reportme" in report
    assert "worker" in report
    assert "accepts" in report
    # 4 data buffers + 1 caboose accepted
    assert " 5 " in report or "       5" in report
