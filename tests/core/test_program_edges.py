"""Edge cases of FGProgram assembly and the stage-context contract."""

import numpy as np
import pytest

from repro.core import FGProgram, Stage
from repro.errors import PipelineStructureError, ProcessFailed
from repro.sim import VirtualTimeKernel


def test_two_programs_sequentially_on_one_kernel():
    """Per-pass programs (like dsort's) run back to back on one kernel."""
    kernel = VirtualTimeKernel()
    order = []

    def main():
        for phase in ("one", "two"):
            prog = FGProgram(kernel, name=phase)

            def work(ctx, buf, phase=phase):
                order.append((phase, buf.round))
                return buf

            prog.add_pipeline("p", [Stage.map(f"w-{phase}", work)],
                              nbuffers=2, buffer_bytes=8, rounds=3)
            prog.run()

    kernel.spawn(main, name="main")
    kernel.run()
    assert order == [("one", 0), ("one", 1), ("one", 2),
                     ("two", 0), ("two", 1), ("two", 2)]


def test_concurrent_disjoint_programs_on_one_kernel():
    """Two nodes' programs coexist (every SPMD run does this)."""
    kernel = VirtualTimeKernel()
    seen = {0: [], 1: []}

    def main(which):
        prog = FGProgram(kernel, name=f"n{which}")

        def work(ctx, buf):
            kernel.sleep(0.5)
            seen[which].append(buf.round)
            return buf

        prog.add_pipeline("p", [Stage.map("w", work)], nbuffers=1,
                          buffer_bytes=8, rounds=4)
        prog.run()

    kernel.spawn(main, 0)
    kernel.spawn(main, 1)
    kernel.run()
    assert seen == {0: [0, 1, 2, 3], 1: [0, 1, 2, 3]}
    assert kernel.now() == pytest.approx(2.0)  # ran concurrently


def test_program_cannot_start_twice():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    prog.add_pipeline("p", [Stage.map("s", lambda ctx, b: b)],
                      nbuffers=1, buffer_bytes=8, rounds=1)

    def main():
        prog.run()
        prog.run()

    kernel.spawn(main)
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert isinstance(exc_info.value.original, PipelineStructureError)


def test_add_pipeline_after_start_rejected():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    stage = Stage.map("s", lambda ctx, b: b)
    prog.add_pipeline("p", [stage], nbuffers=1, buffer_bytes=8, rounds=1)

    def main():
        prog.start()
        prog.add_pipeline("late", [Stage.map("x", lambda ctx, b: b)],
                          nbuffers=1, buffer_bytes=8, rounds=1)

    kernel.spawn(main)
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert isinstance(exc_info.value.original, PipelineStructureError)


def test_env_and_shortcuts_reach_stages():
    kernel = VirtualTimeKernel()
    sentinel_node = object()
    captured = {}

    def main():
        prog = FGProgram(kernel, env={"node": sentinel_node, "extra": 7})

        def probe(ctx, buf):
            captured["node"] = ctx.node
            captured["comm"] = ctx.comm
            captured["extra"] = ctx.env["extra"]
            return buf

        prog.add_pipeline("p", [Stage.map("probe", probe)], nbuffers=1,
                          buffer_bytes=8, rounds=1)
        prog.run()

    kernel.spawn(main)
    kernel.run()
    assert captured["node"] is sentinel_node
    assert captured["comm"] is None
    assert captured["extra"] == 7


def test_source_round_numbers_restart_per_pipeline():
    kernel = VirtualTimeKernel()
    rounds = {"a": [], "b": []}

    def main():
        prog = FGProgram(kernel)
        for name in ("a", "b"):
            def rec(ctx, buf, name=name):
                rounds[name].append(buf.round)
                return buf
            prog.add_pipeline(name, [Stage.map(f"r{name}", rec)],
                              nbuffers=1, buffer_bytes=8, rounds=3)
        prog.run()

    kernel.spawn(main)
    kernel.run()
    assert rounds == {"a": [0, 1, 2], "b": [0, 1, 2]}


def test_full_stage_accept_after_caboose_sees_closed_queue_behavior():
    """A full-control stage must stop accepting after the caboose; the
    framework does not resurrect the pipeline."""
    kernel = VirtualTimeKernel()
    observed = []

    def stage_fn(ctx):
        while True:
            buf = ctx.accept()
            observed.append(buf.is_caboose)
            if buf.is_caboose:
                ctx.forward(buf)
                return
            ctx.convey(buf)

    def main():
        prog = FGProgram(kernel)
        prog.add_pipeline("p", [Stage.source_driven("s", stage_fn)],
                          nbuffers=2, buffer_bytes=8, rounds=2)
        prog.run()

    kernel.spawn(main)
    kernel.run()
    assert observed == [False, False, True]


def test_stage_stats_span_and_wait_relationship():
    kernel = VirtualTimeKernel()

    def main():
        prog = FGProgram(kernel)

        def slow_feeder(ctx, buf):
            kernel.sleep(1.0)
            return buf

        def fast(ctx, buf):
            return buf

        fast_stage = Stage.map("fast", fast)
        prog.add_pipeline("p", [Stage.map("feeder", slow_feeder),
                                fast_stage],
                          nbuffers=1, buffer_bytes=8, rounds=5)
        prog.run()
        return fast_stage.stats

    proc = kernel.spawn(main)
    kernel.run()
    stats = proc.result
    # the fast stage spends essentially all its span waiting on the feeder
    assert stats.accept_wait == pytest.approx(5.0, abs=0.1)
    assert stats.busy == pytest.approx(0.0, abs=0.1)
    assert stats.span >= stats.accept_wait
