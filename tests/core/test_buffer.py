"""Unit tests for Buffer semantics (views, puts, cabooses, aux)."""

import numpy as np
import pytest

from repro.core.buffer import Buffer
from repro.core.pipeline import Pipeline
from repro.core.stage import Stage
from repro.errors import StageError


def make_pipeline():
    return Pipeline("p", [Stage.map("s", lambda ctx, b: b)],
                    nbuffers=1, buffer_bytes=64)


def test_fresh_buffer_state():
    buf = Buffer(make_pipeline(), index=3, capacity=64)
    assert buf.capacity == 64
    assert buf.size == 0
    assert buf.round == -1
    assert not buf.is_caboose
    assert buf.aux is None
    assert buf.tags == {}


def test_put_sets_size_and_view_reads_back():
    buf = Buffer(make_pipeline(), 0, 64)
    buf.put(np.arange(8, dtype="<u4"))
    assert buf.size == 32
    np.testing.assert_array_equal(buf.view("<u4"),
                                  np.arange(8, dtype="<u4"))


def test_view_is_aliasing():
    buf = Buffer(make_pipeline(), 0, 64)
    buf.put(np.zeros(4, dtype="<u8"))
    view = buf.view("<u8")
    view[0] = 99
    np.testing.assert_array_equal(buf.view("<u8"),
                                  [99, 0, 0, 0])


def test_put_overflow_rejected():
    buf = Buffer(make_pipeline(), 0, 16)
    with pytest.raises(StageError):
        buf.put(np.zeros(3, dtype="<u8"))  # 24 bytes > 16


def test_view_requires_whole_items():
    buf = Buffer(make_pipeline(), 0, 64)
    buf.put(np.zeros(6, dtype=np.uint8))
    with pytest.raises(StageError):
        buf.view("<u4")  # 6 bytes is not a multiple of 4


def test_clear_resets_size_and_tags():
    buf = Buffer(make_pipeline(), 0, 64)
    buf.put(np.zeros(8, dtype=np.uint8))
    buf.tags["x"] = 1
    buf.clear()
    assert buf.size == 0
    assert buf.tags == {}


def test_clear_resets_round():
    """A recycled buffer must not carry its previous round back to the
    source; stale rounds are what FGSan's stale_round check hunts."""
    buf = Buffer(make_pipeline(), 0, 64)
    buf.round = 17
    buf.clear()
    assert buf.round == -1


def test_aux_allocated_on_request():
    buf = Buffer(make_pipeline(), 0, 64, with_aux=True)
    assert buf.aux is not None
    assert len(buf.aux) == 64
    # aux is independent scratch space
    buf.aux[0] = 7
    buf.put(np.zeros(1, dtype=np.uint8))
    assert buf.aux[0] == 7


def test_caboose_properties_and_guards():
    p = make_pipeline()
    caboose = Buffer.caboose(p)
    assert caboose.is_caboose
    assert caboose.capacity == 0
    assert caboose.pipeline is p
    with pytest.raises(StageError):
        caboose.put(np.zeros(1, dtype=np.uint8))
    with pytest.raises(StageError):
        caboose.view(np.uint8)


def test_structured_dtype_view():
    dtype = np.dtype([("key", "<u8"), ("payload", "V8")])
    buf = Buffer(make_pipeline(), 0, 64)
    records = np.zeros(2, dtype=dtype)
    records["key"] = [5, 9]
    buf.put(records)
    out = buf.view(dtype)
    np.testing.assert_array_equal(out["key"], [5, 9])
