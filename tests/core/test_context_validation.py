"""Contract tests for StageContext misuse (every rule the paper implies)."""

import pytest

from repro.core import FGProgram, Stage
from repro.errors import PipelineFailed, ProcessFailed, StageError
from repro.sim import VirtualTimeKernel


def run_expect_failure(build, expected_type=StageError,
                       fragment: str = ""):
    """A stage bug must tear the pipeline down gracefully and surface as
    PipelineFailed whose causal chain preserves the original error."""
    kernel = VirtualTimeKernel()
    prog = build(kernel)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    failed = exc_info.value.original
    assert isinstance(failed, PipelineFailed)
    cause = failed.failures[0].cause
    assert isinstance(cause, expected_type)
    if fragment:
        assert fragment in str(cause)
    return cause


def test_accept_names_pipeline_stage_is_not_in():
    def build(kernel):
        prog = FGProgram(kernel)
        other = prog.add_pipeline(
            "other", [Stage.map("o", lambda c, b: b)],
            nbuffers=1, buffer_bytes=8, rounds=1)

        def bad(ctx):
            ctx.accept(other)

        prog.add_pipeline("mine", [Stage.source_driven("bad", bad)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    run_expect_failure(build, fragment="does not belong")


def test_convey_caboose_on_foreign_pipeline_rejected():
    def build(kernel):
        prog = FGProgram(kernel)
        other = prog.add_pipeline(
            "other", [Stage.map("o", lambda c, b: b)],
            nbuffers=1, buffer_bytes=8, rounds=1)

        def bad(ctx):
            ctx.accept()
            ctx.convey_caboose(other)

        prog.add_pipeline("mine", [Stage.source_driven("bad", bad)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    run_expect_failure(build, fragment="does not belong")


def test_forward_rejects_data_buffers():
    def build(kernel):
        prog = FGProgram(kernel)

        def bad(ctx):
            buf = ctx.accept()
            ctx.forward(buf)  # data buffer, not a caboose

        prog.add_pipeline("p", [Stage.source_driven("bad", bad)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    run_expect_failure(build, fragment="caboose")


def test_map_stage_fn_error_names_no_mystery():
    def build(kernel):
        prog = FGProgram(kernel)

        def explode(ctx, buf):
            raise KeyError("user bug")

        prog.add_pipeline("p", [Stage.map("explode", explode)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    original = run_expect_failure(build, expected_type=KeyError)
    assert "user bug" in str(original)


def test_unknown_stage_style_rejected_at_construction():
    from repro.errors import PipelineStructureError
    with pytest.raises(PipelineStructureError):
        Stage("weird", lambda: None, style="stream")


def test_env_is_copied_not_aliased():
    kernel = VirtualTimeKernel()
    env = {"node": None}
    prog = FGProgram(kernel, env=env)
    env["node"] = "mutated-after"
    assert prog.env["node"] is None
