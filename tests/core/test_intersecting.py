"""Tests for intersecting pipelines (paper Figure 5a).

A single merge stage is placed in several vertical pipelines (carrying
sorted runs) and one horizontal pipeline (carrying merged output).  FG must
create one thread for it, let it accept per-pipeline, and recycle each
buffer along its own pipeline.
"""

import numpy as np
import pytest

from repro.core import FGProgram, Stage
from repro.errors import PipelineStructureError, ProcessFailed
from repro.sim import VirtualTimeKernel


def build_merge_program(kernel, runs, out_capacity_values=4):
    """Merge sorted ``runs`` (lists of ints) via intersecting pipelines.

    Each vertical pipeline feeds blocks of one run (2 values per buffer);
    the merge stage produces sorted output blocks of
    ``out_capacity_values`` values on the horizontal pipeline.
    """
    prog = FGProgram(kernel)
    merged = []

    verticals = []
    vstages = []
    for i, run in enumerate(runs):
        blocks = [run[j:j + 2] for j in range(0, len(run), 2)]

        def make_read(blocks):
            def read(ctx, buf):
                buf.put(np.asarray(blocks[buf.round], dtype="<i8"))
                return buf
            return read

        read_stage = Stage.map(f"read{i}", make_read(blocks))
        vstages.append(read_stage)
        verticals.append((read_stage, len(blocks)))

    merge_stage = Stage.source_driven("merge", None)  # fn set below
    pipelines = []
    for i, (read_stage, nblocks) in enumerate(verticals):
        p = prog.add_pipeline(f"v{i}", [read_stage, merge_stage],
                              nbuffers=2, buffer_bytes=16, rounds=nblocks)
        pipelines.append(p)

    def collect(ctx, buf):
        merged.extend(int(x) for x in buf.view("<i8"))
        return buf

    horizontal = prog.add_pipeline(
        "h", [merge_stage, Stage.map("collect", collect)],
        nbuffers=2, buffer_bytes=8 * out_capacity_values, rounds=None)

    def merge(ctx):
        heads = {}   # pipeline index -> (buffer, position)
        exhausted = set()
        for i, p in enumerate(pipelines):
            buf = ctx.accept(p)
            if buf.is_caboose:
                ctx.forward(buf)
                exhausted.add(i)
            else:
                heads[i] = (buf, 0)
        out_vals = []

        def flush():
            # accept the output buffer lazily so none is left held when
            # the runs exhaust right after a flush
            out = ctx.accept(horizontal)
            out.put(np.asarray(out_vals, dtype="<i8"))
            ctx.convey(out)
            out_vals.clear()

        while heads:
            i = min(heads, key=lambda k: heads[k][0].view("<i8")[heads[k][1]])
            buf, pos = heads[i]
            values = buf.view("<i8")
            out_vals.append(int(values[pos]))
            if len(out_vals) == out_capacity_values:
                flush()
            pos += 1
            if pos == len(values):
                ctx.convey(buf)  # spent buffer home along its own pipeline
                nxt = ctx.accept(pipelines[i])
                if nxt.is_caboose:
                    ctx.forward(nxt)
                    del heads[i]
                else:
                    heads[i] = (nxt, 0)
            else:
                heads[i] = (buf, pos)
        if out_vals:
            flush()
        ctx.convey_caboose(horizontal)

    merge_stage.fn = merge
    return prog, merged


def test_merge_three_runs_produces_sorted_output():
    kernel = VirtualTimeKernel()
    runs = [[1, 4, 7, 10], [2, 5, 8, 11], [3, 6, 9, 12]]
    prog, merged = build_merge_program(kernel, runs)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert merged == list(range(1, 13))


def test_merge_with_uneven_run_lengths():
    kernel = VirtualTimeKernel()
    runs = [[5, 6, 7, 8, 9, 10], [1, 2], [3, 4, 11, 12, 13, 14]]
    prog, merged = build_merge_program(kernel, runs)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert merged == sorted(sum(runs, []))


def test_merge_single_run_passthrough():
    kernel = VirtualTimeKernel()
    runs = [[2, 4, 6, 8]]
    prog, merged = build_merge_program(kernel, runs)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert merged == [2, 4, 6, 8]


def test_common_stage_gets_one_thread():
    kernel = VirtualTimeKernel()
    runs = [[1, 2], [3, 4], [5, 6], [7, 8]]
    prog, _ = build_merge_program(kernel, runs)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    # 4 verticals: (source+read+sink) x 4 = 12; horizontal: source+collect+
    # sink = 3; merge: 1 thread total despite being in 5 pipelines.
    assert prog.thread_count == 16


def test_accept_without_pipeline_ambiguous_for_common_stage():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)

    def bad_merge(ctx):
        ctx.accept()  # ambiguous: stage is in two pipelines

    common = Stage.source_driven("common", bad_merge)
    prog.add_pipeline("a", [common], nbuffers=1, buffer_bytes=8, rounds=1)
    prog.add_pipeline("b", [common], nbuffers=1, buffer_bytes=8, rounds=1)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert "must" in str(exc_info.value.original)


def test_map_stage_shared_across_pipelines_rejected():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    shared = Stage.map("shared", lambda ctx, b: b)
    prog.add_pipeline("a", [shared], nbuffers=1, buffer_bytes=8, rounds=1)
    prog.add_pipeline("b", [shared], nbuffers=1, buffer_bytes=8, rounds=1)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert isinstance(exc_info.value.original, PipelineStructureError)


def test_vertical_and_horizontal_buffer_sizes_differ():
    """Figure 5: vertical buffers may be small, horizontal ones large."""
    kernel = VirtualTimeKernel()
    runs = [[1, 2, 3, 4], [5, 6]]
    prog, merged = build_merge_program(kernel, runs, out_capacity_values=16)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert merged == [1, 2, 3, 4, 5, 6]
    vertical = prog.pipelines[0]
    horizontal = prog.pipelines[-1]
    assert vertical.buffer_bytes == 16
    assert horizontal.buffer_bytes == 128
