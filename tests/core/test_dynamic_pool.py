"""Dynamic buffer-pool tests: mid-run grow/shrink, sanitizer-aware.

Every growth/shrink test runs with FGSan enabled: buffers added at
runtime must be tracked from birth, and retired buffers must leave
circulation without tripping (or escaping) the ownership checks.
"""

import pytest

from repro.check.sanitizer import RETIRED
from repro.core import FGProgram, Stage
from repro.errors import PipelineStructureError
from repro.sim import VirtualTimeKernel


def build_counting(kernel, *, rounds, nbuffers=2, per_round=0.01,
                   sanitize=True):
    """[work -> collect] where ``work`` burns virtual time per round."""
    prog = FGProgram(kernel, name="pool", sanitize=sanitize)
    order = []

    def work(ctx, buf):
        kernel.sleep(per_round)
        return buf

    def collect(ctx, buf):
        order.append(buf.round)
        return buf

    prog.add_pipeline(
        "p", [Stage.map("work", work), Stage.map("collect", collect)],
        nbuffers=nbuffers, buffer_bytes=8, rounds=rounds)
    return prog, order


def test_add_buffers_midrun_is_sanitize_clean():
    kernel = VirtualTimeKernel()
    prog, order = build_counting(kernel, rounds=12, nbuffers=2)
    sizes = []

    def tuner():
        kernel.sleep(0.03)
        p = prog.pipelines[0]
        sizes.append(prog.add_buffers(p, 2))
        kernel.sleep(0.02)
        sizes.append(prog.add_buffers(p, 1))

    kernel.spawn(prog.run, name="driver")
    kernel.spawn(tuner, name="tuner")
    kernel.run()
    assert order == list(range(12))
    assert sizes == [4, 5]
    assert prog.pipelines[0].nbuffers == 5
    # FGSan tracked every dynamically added buffer from birth (a
    # violation would have raised and failed the run)
    assert len(prog.sanitizer._buffers) == 5


def test_retire_buffers_midrun_is_sanitize_clean():
    kernel = VirtualTimeKernel()
    prog, order = build_counting(kernel, rounds=12, nbuffers=4)

    granted = []

    def tuner():
        kernel.sleep(0.03)
        granted.append(prog.retire_buffers(prog.pipelines[0], 2))

    kernel.spawn(prog.run, name="driver")
    kernel.spawn(tuner, name="tuner")
    kernel.run()
    assert granted == [2]
    assert order == list(range(12))
    assert prog.pipelines[0].nbuffers == 2
    # the retired buffers ended in FGSan's terminal RETIRED state
    states = [prog.sanitizer._track(b).state
              for b in prog.sanitizer._buffers]
    assert states.count(RETIRED) == 2


def test_retire_keeps_at_least_one_buffer():
    kernel = VirtualTimeKernel()
    prog, order = build_counting(kernel, rounds=8, nbuffers=3)

    granted = []

    def tuner():
        kernel.sleep(0.02)
        # ask for far more than the pool holds: only nbuffers-1 granted
        granted.append(prog.retire_buffers(prog.pipelines[0], 99))
        # everything shrinkable is already pending: nothing more granted
        granted.append(prog.retire_buffers(prog.pipelines[0], 1))

    kernel.spawn(prog.run, name="driver")
    kernel.spawn(tuner, name="tuner")
    kernel.run()
    assert granted == [2, 0]
    assert prog.pipelines[0].nbuffers == 1
    assert order == list(range(8))  # still completes on the floor buffer


def test_grow_then_shrink_round_trip():
    kernel = VirtualTimeKernel()
    prog, order = build_counting(kernel, rounds=16, nbuffers=2)

    def tuner():
        p = prog.pipelines[0]
        kernel.sleep(0.02)
        prog.add_buffers(p, 3)
        kernel.sleep(0.04)
        prog.retire_buffers(p, 3)

    kernel.spawn(prog.run, name="driver")
    kernel.spawn(tuner, name="tuner")
    kernel.run()
    assert order == list(range(16))
    assert prog.pipelines[0].nbuffers == 2
    states = [prog.sanitizer._track(b).state
              for b in prog.sanitizer._buffers]
    assert states.count(RETIRED) == 3


def test_pool_resize_requires_started_program():
    kernel = VirtualTimeKernel()
    prog, _ = build_counting(kernel, rounds=1)
    with pytest.raises(PipelineStructureError):
        prog.add_buffers(prog.pipelines[0], 1)
    with pytest.raises(PipelineStructureError):
        prog.retire_buffers(prog.pipelines[0], 1)


def test_pool_resize_rejects_nonpositive_counts():
    kernel = VirtualTimeKernel()
    prog, _ = build_counting(kernel, rounds=1)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    with pytest.raises(PipelineStructureError):
        prog.add_buffers(prog.pipelines[0], 0)
    with pytest.raises(PipelineStructureError):
        prog.retire_buffers(prog.pipelines[0], 0)


def test_rendezvous_with_unknown_rounds_rejected_at_construction():
    """The capacity-0 + rounds=None combination deadlocks before any
    buffer is delivered; it must be rejected when the pipeline is built,
    not discovered mid-run."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel, name="rv")
    with pytest.raises(PipelineStructureError, match="rendezvous"):
        prog.add_pipeline(
            "p", [Stage.map("s", lambda ctx, buf: buf)],
            nbuffers=2, buffer_bytes=8, rounds=None, channel_capacity=0)


def test_rendezvous_with_declared_rounds_is_allowed():
    kernel = VirtualTimeKernel()
    prog, order = (None, None)
    prog = FGProgram(kernel, name="rv2")
    seen = []

    def s(ctx, buf):
        seen.append(buf.round)
        return buf

    prog.add_pipeline("p", [Stage.map("s", s)], nbuffers=2,
                      buffer_bytes=8, rounds=3, channel_capacity=1)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert seen == [0, 1, 2]
