"""Tests for multiple disjoint pipelines on one node (paper Figure 4).

The send and receive pipelines share nothing but (here) an in-memory
channel standing in for the interconnect; they progress at their own rates
and may use different pool sizes and buffer sizes.
"""

import numpy as np
import pytest

from repro.core import FGProgram, Stage
from repro.sim import Channel, VirtualTimeKernel


def test_disjoint_pipelines_run_concurrently_at_own_rates():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    wire = Channel(kernel, name="wire")
    received = []

    def send(ctx, buf):
        kernel.sleep(1.0)  # acquire+process+send takes 1 s per buffer
        wire.put(buf.round)
        return buf

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        for _ in range(6):
            value = wire.get()
            buf = ctx.accept()
            kernel.sleep(3.0)  # receiver is slower
            received.append(value)
            ctx.convey(buf)
        ctx.convey_caboose(pipeline)

    def save(ctx, buf):
        return buf

    prog.add_pipeline("send", [Stage.map("send", send)],
                      nbuffers=2, buffer_bytes=8, rounds=6)
    prog.add_pipeline("recv", [Stage.source_driven("receive", receive),
                               Stage.map("save", save)],
                      nbuffers=2, buffer_bytes=32, rounds=None)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert received == list(range(6))
    # sender finishes at 6 s; receiver is the critical path: ~6*3 s
    assert kernel.now() == pytest.approx(19.0, abs=1.5)


def test_disjoint_pipelines_have_independent_pools_and_sizes():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    sizes = {}

    def probe(name):
        def fn(ctx, buf):
            sizes.setdefault(name, buf.capacity)
            return buf
        return fn

    a = prog.add_pipeline("a", [Stage.map("pa", probe("a"))],
                          nbuffers=2, buffer_bytes=64, rounds=1)
    b = prog.add_pipeline("b", [Stage.map("pb", probe("b"))],
                          nbuffers=5, buffer_bytes=256, rounds=1)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert sizes == {"a": 64, "b": 256}
    assert len(prog.buffers_of(a)) == 2
    assert len(prog.buffers_of(b)) == 5


def test_buffers_cannot_jump_between_pipelines():
    """Section IV: 'buffers cannot jump from one pipeline to another'."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    stolen = []

    def thief(ctx, buf):
        stolen.append(buf)
        return buf

    def fence(ctx, buf):
        if stolen:
            ctx.convey(stolen[0])  # buffer belongs to the other pipeline
        return buf

    prog.add_pipeline("a", [Stage.map("thief", thief)],
                      nbuffers=1, buffer_bytes=8, rounds=2)
    prog.add_pipeline("b", [Stage.map("fence", fence)],
                      nbuffers=1, buffer_bytes=8, rounds=2)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(Exception) as exc_info:
        kernel.run()
    assert "does not belong" in str(exc_info.value.original)


def test_unbalanced_flow_modelled_with_two_pipelines():
    """A node that sends 3 blocks but receives 9 (unbalanced communication)
    still shuts down cleanly because each pipeline has its own caboose."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    wire = Channel(kernel, name="wire")
    saved = []

    def send(ctx, buf):
        for _ in range(3):  # each send buffer fans out to 3 receive blocks
            wire.put(buf.round)
        return buf

    def receive(ctx):
        pipeline = ctx.pipelines[0]
        for _ in range(9):
            value = wire.get()
            buf = ctx.accept()
            buf.tags["v"] = value
            ctx.convey(buf)
        ctx.convey_caboose(pipeline)

    def save(ctx, buf):
        saved.append(buf.tags["v"])
        return buf

    prog.add_pipeline("send", [Stage.map("send", send)],
                      nbuffers=2, buffer_bytes=8, rounds=3)
    prog.add_pipeline("recv", [Stage.source_driven("receive", receive),
                               Stage.map("save", save)],
                      nbuffers=4, buffer_bytes=8, rounds=None)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert saved == [0, 0, 0, 1, 1, 1, 2, 2, 2]
