"""Tests for bounded retry with exponential backoff."""

import numpy as np
import pytest

from repro.errors import FaultError, FaultInjected, RetryExhausted
from repro.faults import NO_RETRY, RetryPolicy


def flaky(failures, exc_factory=None):
    """An op that fails ``failures`` times, then succeeds with "ok"."""
    calls = []

    def fn():
        calls.append(None)
        if len(calls) <= failures:
            if exc_factory is not None:
                raise exc_factory()
            raise FaultInjected("boom", site="disk.0", rank=0)
        return "ok"

    fn.calls = calls
    return fn


def test_success_first_try_never_sleeps():
    slept = []
    policy = RetryPolicy()
    assert policy.call("read", flaky(0), sleep=slept.append) == "ok"
    assert slept == []


def test_transient_faults_retried_with_exponential_backoff():
    slept = []
    policy = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0,
                         max_delay=1.0, jitter=0.0)
    fn = flaky(3)
    assert policy.call("read", fn, sleep=slept.append) == "ok"
    assert len(fn.calls) == 4
    assert slept == pytest.approx([0.01, 0.02, 0.04])


def test_backoff_capped_at_max_delay():
    policy = RetryPolicy(base_delay=0.1, multiplier=10.0, max_delay=0.25,
                         jitter=0.0)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.25)
    assert policy.backoff(5) == pytest.approx(0.25)


def test_jitter_shaves_a_deterministic_fraction():
    policy = RetryPolicy(base_delay=0.1, jitter=0.5)

    def rng():
        return np.random.Generator(np.random.Philox(42))

    first = [policy.backoff(1, rng=rng()) for _ in range(3)]
    second = [policy.backoff(1, rng=rng()) for _ in range(3)]
    assert first == second
    assert all(0.05 <= d <= 0.1 for d in first)


def test_jittered_backoff_without_rng_is_an_error():
    policy = RetryPolicy(base_delay=0.1, jitter=0.5)
    with pytest.raises(FaultError, match="seeded rng"):
        policy.backoff(1)
    # jitterless policies never need an RNG
    assert RetryPolicy(jitter=0.0).backoff(1) == pytest.approx(1e-3)


def test_permanent_fault_fails_fast():
    slept = []
    policy = RetryPolicy(max_attempts=5)
    fn = flaky(5, lambda: FaultInjected("dead", site="disk.0", rank=0,
                                        permanent=True))
    with pytest.raises(FaultInjected):
        policy.call("read", fn, sleep=slept.append)
    assert len(fn.calls) == 1 and slept == []


def test_exhaustion_wraps_the_last_fault():
    policy = RetryPolicy(max_attempts=3, jitter=0.0)
    with pytest.raises(RetryExhausted) as exc_info:
        policy.call("disk read", flaky(99), sleep=lambda d: None)
    err = exc_info.value
    assert err.op == "disk read"
    assert err.attempts == 3
    assert isinstance(err.last, FaultInjected)
    assert err.__cause__ is err.last


def test_on_retry_fires_before_each_backoff():
    seen = []
    policy = RetryPolicy(max_attempts=4, jitter=0.0)
    policy.call("read", flaky(2), sleep=lambda d: None,
                on_retry=lambda attempt, exc: seen.append(attempt))
    assert seen == [1, 2]


def test_other_exceptions_pass_straight_through():
    policy = RetryPolicy(max_attempts=5)
    with pytest.raises(ValueError):
        policy.call("read", flaky(1, lambda: ValueError("not a fault")),
                    sleep=lambda d: None)


def test_no_retry_fails_on_first_transient_fault():
    with pytest.raises(RetryExhausted) as exc_info:
        NO_RETRY.call("read", flaky(1), sleep=lambda d: None)
    assert exc_info.value.attempts == 1


@pytest.mark.parametrize("kwargs", [
    dict(max_attempts=0),
    dict(base_delay=-1.0),
    dict(multiplier=0.5),
    dict(jitter=1.5),
    dict(op_timeout=0.0),
])
def test_policy_validation(kwargs):
    with pytest.raises(FaultError):
        RetryPolicy(**kwargs)
