"""Satellite property: chaos runs are an exact function of the seed.

Two dsort runs with the same FaultPlan seed must produce identical event
timelines, identical metrics snapshots, and identical sorted output; and
faults may cost *time* but never *correctness* — the faulted output is
byte-identical to the fault-free output of the same dataset.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, chaos_plan, run_chaos_dsort

NODES = 2
RECORDS = 360
SIZES = dict(block_records=64, vertical_block_records=32,
             out_block_records=64, oversample=4)


def run(seed, plan=None, trace=True):
    return run_chaos_dsort(n_nodes=NODES, records_per_node=RECORDS,
                           seed=seed, plan=plan, pass_retries=1,
                           trace=trace, **SIZES)


def chaos(seed):
    return chaos_plan(seed, NODES, disk_fault_rate=0.05, drop_rate=0.02,
                      straggler_rank=1, straggler_slowdown=2.0)


def test_same_seed_runs_are_byte_identical():
    first = run(7, chaos(7))
    second = run(7, chaos(7))
    assert first.fault_summary["total"] > 0  # the chaos actually bit
    assert first.fault_events == second.fault_events
    assert first.trace_digest == second.trace_digest
    assert first.output_digest == second.output_digest
    assert first.metrics == second.metrics
    assert first.elapsed == second.elapsed
    assert dataclasses.asdict(first) == dataclasses.asdict(second)


def test_faults_cost_time_never_correctness():
    clean = run(7, FaultPlan(seed=7))
    faulted = run(7, chaos(7))
    assert clean.fault_summary["total"] == 0
    assert faulted.fault_summary["total"] > 0
    # same dataset, same sorted bytes — but a different, slower timeline
    assert faulted.output_digest == clean.output_digest
    assert faulted.trace_digest != clean.trace_digest
    assert faulted.elapsed > clean.elapsed


def test_different_seeds_give_different_timelines():
    assert run(7, chaos(7)).trace_digest != run(8, chaos(8)).trace_digest


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_same_seed_same_run(seed):
    first = run(seed, chaos(seed), trace=False)
    second = run(seed, chaos(seed), trace=False)
    assert first.verified and second.verified
    assert first.fault_events == second.fault_events
    assert first.output_digest == second.output_digest
    assert first.metrics == second.metrics
    assert first.elapsed == second.elapsed
