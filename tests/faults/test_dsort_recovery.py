"""Pass-level checkpoint/restart: dsort survives a permanent disk fault."""

import pytest

from repro.errors import PipelineFailed, ProcessFailed, SortError
from repro.faults import FaultPlan, chaos_plan, run_chaos_dsort

NODES = 2
RECORDS = 360
SIZES = dict(block_records=64, vertical_block_records=32,
             out_block_records=64, oversample=4)


def run(plan, pass_retries=2, seed=5):
    return run_chaos_dsort(n_nodes=NODES, records_per_node=RECORDS,
                           seed=seed, plan=plan,
                           pass_retries=pass_retries, trace=False,
                           **SIZES)


def permanent_plan(seed=5):
    # a scheduled permanent disk fault early in pass 1 on rank 1; retry
    # cannot absorb it, so the whole pass must restart cluster-wide
    return chaos_plan(seed, NODES, disk_fault_rate=0.0, drop_rate=0.0,
                      permanent_disk_op=10, permanent_disk_rank=1)


def test_permanent_fault_forces_pass_restart_and_output_survives():
    baseline = run(FaultPlan(seed=5))
    report = run(permanent_plan())
    assert report.pass_restarts >= 1
    assert report.verified
    # recovery re-ran the pass; the sorted bytes are still identical
    assert report.output_digest == baseline.output_digest
    assert report.fault_summary["by_kind"].get("disk.permanent", 0) >= 1
    # the restart is visible through the metrics layer (rank 0 counts it)
    counters = report.metrics["counters"]
    assert counters["recovery.pass_restarts"]["value"] >= 1
    # and it costs time
    assert report.elapsed > baseline.elapsed


def test_transient_storm_absorbed_without_restart():
    report = run(chaos_plan(5, NODES, disk_fault_rate=0.05,
                            drop_rate=0.02))
    assert report.pass_restarts == 0
    assert report.verified
    counters = report.metrics["counters"]
    # retries, not restarts, absorbed the faults
    assert (counters.get("retry.disk.retries", {}).get("value", 0)
            + counters.get("retry.net.retransmits", {}).get("value", 0)) > 0
    assert "recovery.pass_restarts" not in counters


def test_without_retries_the_permanent_fault_is_fatal():
    with pytest.raises(ProcessFailed) as exc_info:
        run(permanent_plan(), pass_retries=0)
    original = exc_info.value.original
    assert isinstance(original, PipelineFailed)
    assert "injected permanent disk" in repr(original)


def test_recovery_is_deterministic_too():
    first = run(permanent_plan())
    second = run(permanent_plan())
    assert first.pass_restarts == second.pass_restarts
    assert first.fault_events == second.fault_events
    assert first.output_digest == second.output_digest
    assert first.elapsed == second.elapsed


def test_pass_retries_validated():
    from repro.sorting.dsort import DsortConfig
    with pytest.raises(SortError):
        DsortConfig(pass_retries=-1)
