"""FGRace under chaos: clean sorters stay clean, the seeded defect dies.

The sanitized + race-detected chaos runs prove the vector-clock layer
adds no false positives even with faults, retries, and speculative
backup execution in play.  The seeded shared-counter defect must be
caught by BOTH layers — statically by FG110 and dynamically by FGRace —
and these gates are inverted: if either detector goes blind, the test
fails, not the fixture.
"""

import importlib.util
import os

import pytest

from repro.check import lint_program
from repro.errors import ProcessFailed, RaceError
from repro.faults import FaultPlan, run_chaos_csort, run_chaos_dsort
from repro.recover import RecoverPolicy, SpeculationPolicy
from repro.sim import VirtualTimeKernel

SEED = 42


def load_race_defect():
    path = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                        "check", "fixtures", "race_defect.py")
    spec = importlib.util.spec_from_file_location("race_defect", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_chaos_dsort_with_speculation_is_race_free(monkeypatch):
    monkeypatch.setenv("REPRO_RACE", "1")
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    recover = RecoverPolicy(
        checkpoint=False, backup_runs=True,
        speculation=SpeculationPolicy(interval=0.01, patience=2,
                                      min_progress=0.02))
    report = run_chaos_dsort(seed=SEED, records_per_node=864,
                             block_records=48, recover=recover)
    assert report.verified


def test_chaos_csort_is_race_free(monkeypatch):
    monkeypatch.setenv("REPRO_RACE", "1")
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    report = run_chaos_csort(seed=SEED)
    assert report.verified


def test_seeded_defect_is_flagged_statically():
    # inverted gate: this test FAILS if FG110 stops seeing the defect
    mod = load_race_defect()
    prog = mod.build(VirtualTimeKernel())
    flagged = [f for f in lint_program(prog) if f.rule_id == "FG110"]
    assert flagged, "FG110 went blind to the seeded race defect"
    assert any("state['count']" in f.message for f in flagged)


def test_seeded_defect_is_caught_dynamically():
    # inverted gate: this test FAILS if FGRace stops seeing the defect
    mod = load_race_defect()
    kernel = VirtualTimeKernel()
    prog = mod.build(kernel, race_detect=True)
    kernel.spawn(prog.run, name="main")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    original = exc_info.value.original
    while original is not None and not isinstance(original, RaceError):
        original = getattr(original, "original",
                           None) or original.__cause__
    assert isinstance(original, RaceError), \
        "FGRace went blind to the seeded race defect"
    assert original.kind == "shared-state-race"
