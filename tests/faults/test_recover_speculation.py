"""Speculative backup execution: stragglers lose the race, bytes don't.

A 3x-slowed node's pass-2 merge is raced by a backup merge on its buddy
(fed from the backup run copies pass 1 deposited there).  First to
finish the range wins; the loser tears down through the normal
SpeculationLost path.  Whoever wins, the output must stay byte-identical
to the clean run — and with the straggler slow enough, the backup wins
and the run beats the unaided one.
"""

from repro.faults import FaultPlan, run_chaos_dsort
from repro.recover import RecoverPolicy, SpeculationPolicy

SEED = 42
#: read-heavy merge geometry: plenty of offloadable seek work
GEOM = dict(block_records=256, vertical_block_records=64,
            out_block_records=256)


def spec_policy():
    return RecoverPolicy(
        checkpoint=False, backup_runs=True,
        speculation=SpeculationPolicy(interval=0.01, patience=2,
                                      min_progress=0.02))


def straggler_plan(start):
    return FaultPlan(seed=SEED).with_straggler(rank=1, slowdown=3.0,
                                               start=start)


def test_speculation_beats_the_straggler_and_preserves_bytes():
    clean = run_chaos_dsort(seed=SEED, plan=FaultPlan(seed=SEED),
                            recover=RecoverPolicy(checkpoint=False),
                            **GEOM)
    # straggle rank 1 from pass 2 on (pass 2 starts well before 60% of
    # the clean elapsed time)
    start = 0.5 * clean.elapsed
    base = run_chaos_dsort(seed=SEED, plan=straggler_plan(start),
                           recover=RecoverPolicy(checkpoint=False),
                           **GEOM)
    spec = run_chaos_dsort(seed=SEED, plan=straggler_plan(start),
                           recover=spec_policy(), **GEOM)
    assert spec.verified
    assert spec.output_digest == clean.output_digest
    assert base.output_digest == clean.output_digest
    kinds = [d["kind"] for d in spec.recovery_decisions]
    assert "speculate" in kinds, spec.recovery_decisions
    assert "winner" in kinds
    # the race must pay for itself
    assert spec.elapsed < base.elapsed


def test_speculation_is_deterministic():
    start = 0.2
    one = run_chaos_dsort(seed=SEED, plan=straggler_plan(start),
                          recover=spec_policy(), **GEOM)
    two = run_chaos_dsort(seed=SEED, plan=straggler_plan(start),
                          recover=spec_policy(), **GEOM)
    assert one.output_digest == two.output_digest
    assert one.trace_digest == two.trace_digest
    assert one.recovery_decisions == two.recovery_decisions


def test_speculation_on_a_healthy_cluster_stays_quiet():
    # default watcher thresholds: natural skew between healthy ranks
    # must not trip the straggler detector
    policy = RecoverPolicy(checkpoint=False, backup_runs=True,
                           speculation=SpeculationPolicy())
    report = run_chaos_dsort(seed=SEED, plan=FaultPlan(seed=SEED),
                             recover=policy, **GEOM)
    assert report.verified
    kinds = {d["kind"] for d in report.recovery_decisions}
    assert "speculate" not in kinds, report.recovery_decisions
