"""Tests for the declarative fault-plan layer (pure data, no RNG)."""

import pytest

from repro.errors import FaultError
from repro.faults import FaultPlan, chaos_plan
from repro.faults.plan import (
    DiskFaultAt,
    DiskFaults,
    MessageDrops,
    NicDegradation,
    NodeCrash,
    Straggler,
    in_window,
)


def test_empty_plan():
    plan = FaultPlan(seed=3)
    assert plan.empty
    assert plan.seed == 3
    assert "seed=3" in plan.describe()


def test_builders_chain_and_fill_groups():
    plan = (FaultPlan(seed=7)
            .with_disk_faults(rate=0.1)
            .with_disk_fault_at(rank=1, op_index=5)
            .with_message_drops(rate=0.05, src=0, dst=2)
            .with_nic_degradation(factor=2.0, rank=1)
            .with_straggler(rank=2, slowdown=4.0)
            .with_node_crash(rank=0, at=10.0))
    assert not plan.empty
    assert plan.disk_faults == [DiskFaults(0.1)]
    assert plan.disk_fault_ats == [DiskFaultAt(1, 5)]
    assert plan.message_drops == [MessageDrops(0.05, src=0, dst=2)]
    assert plan.nic_degradations == [NicDegradation(2.0, rank=1)]
    assert plan.stragglers == [Straggler(2, 4.0)]
    assert plan.node_crashes == [NodeCrash(0, 10.0)]
    # one describe line per spec plus the header
    assert len(plan.describe().splitlines()) == 7


@pytest.mark.parametrize("bad", [-0.1, 1.5])
def test_rates_must_be_probabilities(bad):
    with pytest.raises(FaultError):
        DiskFaults(rate=bad)
    with pytest.raises(FaultError):
        MessageDrops(rate=bad)


def test_windows_validated():
    with pytest.raises(FaultError):
        DiskFaults(rate=0.1, start=-1.0)
    with pytest.raises(FaultError):
        MessageDrops(rate=0.1, start=5.0, end=4.0)


def test_factor_and_slowdown_must_not_speed_up():
    with pytest.raises(FaultError):
        NicDegradation(factor=0.5)
    with pytest.raises(FaultError):
        Straggler(rank=0, slowdown=0.9)


def test_negative_op_index_and_crash_time_rejected():
    with pytest.raises(FaultError):
        DiskFaultAt(rank=0, op_index=-1)
    with pytest.raises(FaultError):
        NodeCrash(rank=0, at=-0.1)


def test_in_window_half_open():
    assert in_window(1.0, 2.0, 1.0)
    assert not in_window(1.0, 2.0, 2.0)
    assert not in_window(1.0, 2.0, 0.5)
    assert in_window(0.0, None, 1e9)


def test_chaos_plan_standard_recipe():
    plan = chaos_plan(11, 4, straggler_rank=2, permanent_disk_op=30,
                      permanent_disk_rank=1)
    assert plan.seed == 11
    assert len(plan.disk_faults) == 1 and not plan.disk_faults[0].permanent
    assert len(plan.message_drops) == 1
    assert plan.stragglers[0].rank == 2
    spec = plan.disk_fault_ats[0]
    assert (spec.rank, spec.op_index, spec.permanent) == (1, 30, True)


def test_chaos_plan_zero_rates_give_empty_plan():
    assert chaos_plan(0, 2, disk_fault_rate=0.0, drop_rate=0.0).empty


def test_chaos_plan_rejects_out_of_range_straggler():
    with pytest.raises(FaultError):
        chaos_plan(0, 2, straggler_rank=5)


def test_plan_json_round_trip():
    plan = (FaultPlan(seed=7)
            .with_disk_faults(rate=0.1, start=1.0, end=2.0)
            .with_disk_fault_at(rank=1, op_index=5, permanent=True)
            .with_message_drops(rate=0.05, src=0, dst=2)
            .with_nic_degradation(factor=2.0, rank=1)
            .with_straggler(rank=2, slowdown=4.0)
            .with_node_crash(rank=0, at=10.0))
    doc = plan.to_json()
    assert doc["seed"] == 7
    rebuilt = FaultPlan.from_json(doc)
    assert rebuilt.to_json() == doc
    assert rebuilt.disk_fault_ats == plan.disk_fault_ats
    assert rebuilt.stragglers == plan.stragglers
    # JSON-serializable all the way down (what provenance records store)
    import json
    assert FaultPlan.from_json(json.loads(json.dumps(doc))).to_json() == doc


def test_empty_plan_json_round_trip():
    plan = FaultPlan(seed=3)
    doc = plan.to_json()
    assert doc == {"seed": 3}
    rebuilt = FaultPlan.from_json(doc)
    assert rebuilt.empty and rebuilt.seed == 3


def test_plan_from_json_validates():
    with pytest.raises(FaultError):
        FaultPlan.from_json({"seed": 0,
                             "disk_faults": [{"rate": 1.5}]})
    with pytest.raises(FaultError):
        FaultPlan.from_json({"seed": 0, "unknown_faults": []})
