"""Chaos coverage for csort: transient faults, deterministic reports.

csort has no pass-level recovery — every fault it survives is absorbed
by the disk/NIC retry layer — so its chaos harness covers exactly the
transient fault model and refuses plans it cannot recover from.
"""

import pytest

from repro.errors import FaultError
from repro.faults import FaultPlan, run_chaos_csort
from repro.prov import replay

SEED = 77


def test_chaos_csort_survives_transients_and_verifies():
    report = run_chaos_csort(seed=SEED)
    assert report.sorter == "csort"
    assert report.verified
    assert report.pass_restarts == 0
    assert report.fault_summary["total"] > 0
    assert report.recovery_decisions == []


def test_chaos_csort_is_deterministic():
    one = run_chaos_csort(seed=SEED)
    two = run_chaos_csort(seed=SEED)
    assert one.output_digest == two.output_digest
    assert one.trace_digest == two.trace_digest
    assert one.metrics_digest == two.metrics_digest
    assert one.fault_events == two.fault_events


def test_chaos_csort_record_replays_byte_exactly():
    report = run_chaos_csort(seed=SEED, records_per_node=432,
                             out_block_records=32)
    assert report.provenance is not None
    assert report.provenance.kind == "chaos_csort"
    result = replay(report.provenance)
    assert result.ok, result.describe()


def test_chaos_csort_refuses_node_crash_plans():
    plan = FaultPlan(seed=SEED).with_node_crash(rank=0, at=0.1)
    with pytest.raises(FaultError, match="node-crash"):
        run_chaos_csort(seed=SEED, plan=plan)
