"""Block-level checkpointing: retried passes resume, bytes unchanged.

The checkpoint mechanism must be invisible when nothing fails (clean
runs stay byte-identical to the legacy path) and must turn a pass
restart into a resume: the retried pass re-runs only work that never
became durable, and the output is byte-identical to the clean run's.
"""

import pytest

from repro.faults import FaultPlan, run_chaos_dsort
from repro.recover import RecoverPolicy

SEED = 42


def quiet_plan():
    return FaultPlan(seed=SEED)


def test_clean_run_is_byte_identical_to_legacy():
    legacy = run_chaos_dsort(seed=SEED, plan=quiet_plan())
    recov = run_chaos_dsort(seed=SEED, plan=quiet_plan(),
                            recover=RecoverPolicy())
    assert recov.verified
    assert recov.output_digest == legacy.output_digest
    assert recov.pass_restarts == 0
    assert recov.recovery_decisions == []


def test_mid_pass2_fault_resumes_from_durable_blocks():
    clean = run_chaos_dsort(seed=SEED, plan=quiet_plan(),
                            recover=RecoverPolicy())
    # a burst of permanent disk faults late in pass 2 forces a restart
    # of that pass; the checkpoint journals make the retry a resume
    at = 0.75 * clean.elapsed
    plan = FaultPlan(seed=SEED).with_disk_faults(
        rate=1.0, rank=1, permanent=True, start=at, end=at + 0.01)
    faulted = run_chaos_dsort(seed=SEED, plan=plan,
                              recover=RecoverPolicy())
    assert faulted.verified
    assert faulted.pass_restarts >= 1
    assert faulted.output_digest == clean.output_digest
    kinds = {d["kind"] for d in faulted.recovery_decisions}
    assert "resume" in kinds, faulted.recovery_decisions
    # the decision trail also landed in provenance
    assert faulted.provenance is not None
    assert faulted.provenance.recovery_decisions


def test_checkpointing_is_deterministic():
    at = 0.25
    plan = lambda: FaultPlan(seed=SEED).with_disk_faults(
        rate=1.0, rank=0, permanent=True, start=at, end=at + 0.01)
    one = run_chaos_dsort(seed=SEED, plan=plan(), recover=RecoverPolicy())
    two = run_chaos_dsort(seed=SEED, plan=plan(), recover=RecoverPolicy())
    assert one.output_digest == two.output_digest
    assert one.trace_digest == two.trace_digest
    assert one.metrics_digest == two.metrics_digest
    assert one.recovery_decisions == two.recovery_decisions
