"""Tests for the deterministic fault injector (oracle semantics)."""

import pytest

from repro.errors import FaultInjected
from repro.faults import FaultInjector, FaultPlan
from repro.sim import VirtualTimeKernel


def make(plan, n_nodes=3):
    return FaultInjector(VirtualTimeKernel(), plan, n_nodes)


def test_site_streams_are_deterministic_and_independent():
    a = make(FaultPlan(seed=99))
    b = make(FaultPlan(seed=99))
    draws_a = [float(a.rng("disk.0").random()) for _ in range(8)]
    draws_b = [float(b.rng("disk.0").random()) for _ in range(8)]
    assert draws_a == draws_b
    # a different site has its own stream, unaffected by disk.0 traffic
    assert [float(a.rng("disk.1").random()) for _ in range(8)] != draws_a
    # a different seed shifts every stream
    c = make(FaultPlan(seed=100))
    assert [float(c.rng("disk.0").random()) for _ in range(8)] != draws_a


def test_disk_fault_at_fires_exactly_once_at_the_indexed_op():
    inj = make(FaultPlan(seed=0).with_disk_fault_at(rank=1, op_index=2))
    inj.disk_op(1, "read", 512)
    inj.disk_op(1, "read", 512)
    with pytest.raises(FaultInjected) as exc_info:
        inj.disk_op(1, "write", 512)
    assert exc_info.value.permanent
    assert exc_info.value.rank == 1
    # the op was still counted, so the fault never re-fires
    inj.disk_op(1, "write", 512)
    assert inj.disk_ops[1] == 4
    # other disks are untouched
    inj.disk_op(0, "read", 512)
    assert inj.summary() == {"total": 1,
                             "by_kind": {"disk.permanent": 1}}


def test_disk_fault_rate_extremes():
    always = make(FaultPlan(seed=0).with_disk_faults(rate=1.0))
    with pytest.raises(FaultInjected) as exc_info:
        always.disk_op(0, "read", 64)
    assert not exc_info.value.permanent  # transient by default
    never = make(FaultPlan(seed=0).with_disk_faults(rate=0.0))
    for _ in range(50):
        never.disk_op(0, "read", 64)
    assert never.events == []


def test_disk_fault_window_not_yet_open():
    inj = make(FaultPlan(seed=0).with_disk_faults(rate=1.0, start=100.0))
    inj.disk_op(0, "read", 64)  # virtual time is 0 < window start
    assert inj.events == []


def test_message_fate_drop_and_deliver():
    dropper = make(FaultPlan(seed=0).with_message_drops(rate=1.0))
    assert dropper.message_fate(0, 1, 1024) == "drop"
    assert dropper.events[0].kind == "net.drop"
    clean = make(FaultPlan(seed=0))
    assert clean.message_fate(0, 1, 1024) == "deliver"
    assert clean.events == []


def test_message_drops_respect_src_dst_filters():
    inj = make(FaultPlan(seed=0).with_message_drops(rate=1.0, src=0,
                                                    dst=2))
    assert inj.message_fate(0, 1, 64) == "deliver"
    assert inj.message_fate(1, 2, 64) == "deliver"
    assert inj.message_fate(0, 2, 64) == "drop"


def test_crashed_node_black_holes_and_fails_fast():
    inj = make(FaultPlan(seed=0).with_node_crash(rank=1, at=0.0))
    assert inj.crashed(1) and not inj.crashed(0)
    # traffic addressed to the dead node vanishes like a drop
    assert inj.message_fate(0, 1, 64) == "drop"
    # the dead node's own operations raise a permanent fault
    with pytest.raises(FaultInjected) as exc_info:
        inj.check_alive(1, "disk.1")
    assert exc_info.value.permanent
    inj.check_alive(0, "disk.0")  # healthy node passes
    assert inj.summary()["by_kind"] == {"net.drop": 1, "node.crash": 1}


def test_straggler_and_nic_factors():
    inj = make(FaultPlan(seed=0)
               .with_straggler(rank=1, slowdown=3.0)
               .with_nic_degradation(factor=2.0, rank=1))
    assert inj.compute_factor(1) == 3.0
    assert inj.disk_factor(1) == 3.0
    assert inj.wire_factor(1) == 2.0
    assert inj.compute_factor(0) == 1.0
    assert inj.wire_factor(0) == 1.0
    # factors never fire fault events
    assert inj.events == []


def test_identical_call_sequences_fire_identical_events():
    plan = (FaultPlan(seed=5)
            .with_disk_faults(rate=0.3)
            .with_message_drops(rate=0.2))

    def drive(inj):
        fired = []
        for i in range(40):
            try:
                inj.disk_op(i % 3, "read", 64)
            except FaultInjected:
                fired.append(("disk", i))
            if inj.message_fate(i % 3, (i + 1) % 3, 64) == "drop":
                fired.append(("net", i))
        return fired

    first = drive(make(plan))
    second = drive(make(plan))
    assert first and first == second
