"""Partition re-assignment: a node crash mid-pass-2 is survivable.

When a node dies during the merge pass, the survivors enter a new
epoch: the dead rank's partitions are re-striped across the living
nodes (its buddy adopting the backup run copies), only blocks that
never became durable re-run, and the reassembled output stays
byte-identical to the clean run's.
"""

import pytest

from repro.errors import ProcessFailed, SortError
from repro.faults import FaultPlan, run_chaos_dsort
from repro.recover import RecoverPolicy

SEED = 42


def full_policy():
    return RecoverPolicy(checkpoint=True, backup_runs=True, reassign=True)


def test_crash_mid_pass2_reassigns_and_preserves_bytes():
    clean = run_chaos_dsort(seed=SEED, plan=FaultPlan(seed=SEED),
                            recover=full_policy())
    at = 0.75 * clean.elapsed
    plan = FaultPlan(seed=SEED).with_node_crash(rank=1, at=at)
    crashed = run_chaos_dsort(seed=SEED, plan=plan,
                              recover=full_policy())
    assert crashed.verified
    assert crashed.output_digest == clean.output_digest
    kinds = [d["kind"] for d in crashed.recovery_decisions]
    assert "node_dead" in kinds
    assert "reassign" in kinds, crashed.recovery_decisions
    assert crashed.pass_restarts >= 1
    # decisions reached provenance, and the record replays byte-exactly
    assert crashed.provenance is not None
    assert crashed.provenance.recovery_decisions
    assert crashed.recovery_decisions == (
        run_chaos_dsort(seed=SEED, plan=plan,
                        recover=full_policy()).recovery_decisions)


def test_crash_without_reassignment_policy_fails_the_sort():
    plan = FaultPlan(seed=SEED).with_node_crash(rank=1, at=0.3)
    with pytest.raises((SortError, ProcessFailed),
                       match="no reassign"):
        run_chaos_dsort(seed=SEED, plan=plan,
                        recover=RecoverPolicy(checkpoint=True),
                        pass_retries=3)
