"""Property-based tests for the simulation substrate.

Two families:

* model-based channel testing — random op sequences against a reference
  deque model;
* randomized kernel programs — arbitrary sleep/channel interaction graphs
  must be deterministic (identical timelines across runs) and must
  conserve every message.
"""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, VirtualTimeKernel


# ---------------------------------------------------------------------------
# model-based channel check (single process: no blocking allowed)
# ---------------------------------------------------------------------------

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 99)),
        st.tuples(st.just("get"), st.just(0)),
    ),
    min_size=0, max_size=60)


@settings(max_examples=60, deadline=None)
@given(op_strategy, st.sampled_from([None, 0, 1, 3, 10]))
def test_channel_matches_deque_model(ops, capacity):
    kernel = VirtualTimeKernel()
    results = []

    def proc():
        ch = Channel(kernel, capacity=capacity)
        model: deque = deque()
        for op, value in ops:
            if op == "put":
                ok = ch.try_put(value)
                model_ok = capacity is None or len(model) < capacity
                assert ok == model_ok
                if ok:
                    model.append(value)
            else:
                ok, item = ch.try_get()
                if model:
                    assert ok and item == model.popleft()
                else:
                    assert not ok and item is None
            assert len(ch) == len(model)
        results.append(True)

    kernel.spawn(proc)
    kernel.run()
    assert results == [True]


# ---------------------------------------------------------------------------
# randomized producer/consumer meshes: determinism + conservation
# ---------------------------------------------------------------------------

mesh_strategy = st.tuples(
    st.integers(min_value=1, max_value=4),            # producers
    st.integers(min_value=1, max_value=4),            # consumers
    st.integers(min_value=1, max_value=12),           # items per producer
    st.lists(st.floats(min_value=0.0, max_value=2.0,
                       allow_nan=False), min_size=8, max_size=8),
    st.sampled_from([None, 1, 2, 5]),                 # channel capacity
)


def run_mesh(n_producers, n_consumers, per_producer, delays, capacity):
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, capacity=capacity)
    total = n_producers * per_producer
    consumed = []

    def producer(pid):
        for i in range(per_producer):
            kernel.sleep(delays[(pid + i) % len(delays)])
            ch.put((pid, i))

    def consumer(cid):
        while True:
            got = ch.get()
            if got is None:  # poison pill
                return
            consumed.append((kernel.now(), cid, got))
            kernel.sleep(delays[(cid + len(consumed)) % len(delays)])

    def coordinator(producers, consumers):
        for proc in producers:
            proc.join()
        for _ in consumers:
            ch.put(None)

    producers = [kernel.spawn(producer, p, name=f"prod{p}")
                 for p in range(n_producers)]
    consumers = [kernel.spawn(consumer, c, name=f"cons{c}")
                 for c in range(n_consumers)]
    kernel.spawn(coordinator, producers, consumers, name="coord")
    kernel.run()
    return kernel.now(), consumed


@settings(max_examples=40, deadline=None)
@given(mesh_strategy)
def test_mesh_conserves_items_and_is_deterministic(params):
    end1, consumed1 = run_mesh(*params)
    end2, consumed2 = run_mesh(*params)
    # determinism: identical timelines, item for item
    assert end1 == end2
    assert consumed1 == consumed2
    # conservation: every produced item consumed exactly once
    n_producers, _, per_producer, _, _ = params
    items = [got for _, _, got in consumed1]
    assert sorted(items) == [(p, i) for p in range(n_producers)
                             for i in range(per_producer)]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                min_size=1, max_size=20))
def test_parallel_sleeps_end_at_max(durations):
    kernel = VirtualTimeKernel()
    for i, duration in enumerate(durations):
        kernel.spawn(lambda d=duration: kernel.sleep(d), name=f"s{i}")
    kernel.run()
    assert kernel.now() == pytest.approx(max(durations))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
                min_size=1, max_size=15))
def test_sequential_sleeps_end_at_sum(durations):
    kernel = VirtualTimeKernel()

    def proc():
        for duration in durations:
            kernel.sleep(duration)

    kernel.spawn(proc)
    kernel.run()
    assert kernel.now() == pytest.approx(sum(durations))
