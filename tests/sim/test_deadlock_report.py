"""The deadlock report carries live detail per blocked process:
channel occupancy/capacity and owning pipeline, resource usage/queue."""

import pytest

from repro.errors import DeadlockError
from repro.sim import Channel, Resource, VirtualTimeKernel


def test_blocked_get_reports_occupancy_and_capacity():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, capacity=4, name="starved")
    kernel.spawn(ch.get, name="getter")
    with pytest.raises(DeadlockError) as exc_info:
        kernel.run()
    message = str(exc_info.value)
    assert "getter" in message and "starved" in message
    assert "(occupancy 0/4)" in message


def test_unbounded_channel_reports_inf_capacity():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, name="endless")
    kernel.spawn(ch.get, name="getter")
    with pytest.raises(DeadlockError) as exc_info:
        kernel.run()
    assert "(occupancy 0/inf)" in str(exc_info.value)


def test_blocked_put_reports_full_channel_and_owner():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, capacity=2, name="jammed")
    ch.owner = "pass1.send"

    def producer():
        for i in range(3):  # third put blocks on the full channel
            ch.put(i)

    kernel.spawn(producer, name="producer")
    with pytest.raises(DeadlockError) as exc_info:
        kernel.run()
    message = str(exc_info.value)
    assert "(occupancy 2/2, pipeline pass1.send)" in message


def test_blocked_resource_reports_usage_and_queue():
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=1, name="disk-arm")

    def hog():
        res.acquire()  # never released

    def waiter():
        kernel.sleep(1.0)
        res.acquire()

    kernel.spawn(hog, name="hog")
    kernel.spawn(waiter, name="waiter")
    with pytest.raises(DeadlockError) as exc_info:
        kernel.run()
    message = str(exc_info.value)
    assert "waiter" in message
    assert "(in use 1/1, 1 queued)" in message


def test_report_lists_every_blocked_process():
    kernel = VirtualTimeKernel()
    a = Channel(kernel, name="qa")
    b = Channel(kernel, capacity=1, name="qb")
    kernel.spawn(a.get, name="first")
    kernel.spawn(b.get, name="second")
    with pytest.raises(DeadlockError) as exc_info:
        kernel.run()
    message = str(exc_info.value)
    assert "first" in message and "qa" in message
    assert "second" in message and "qb" in message
