"""Unit tests for channels on the virtual-time kernel."""

import pytest

from repro.errors import ChannelClosed, DeadlockError
from repro.sim import Channel, VirtualTimeKernel


def run_in_kernel(fn):
    """Run ``fn(kernel)`` as the body of a single kernel process."""
    kernel = VirtualTimeKernel()
    box = {}

    def main():
        box["result"] = fn(kernel)

    kernel.spawn(main, name="main")
    kernel.run()
    return box["result"]


def test_fifo_order():
    def body(kernel):
        ch = Channel(kernel, capacity=10)
        for i in range(5):
            ch.put(i)
        return [ch.get() for _ in range(5)]

    assert run_in_kernel(body) == [0, 1, 2, 3, 4]


def test_bounded_put_blocks_until_get():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, capacity=1, name="tiny")
    times = {}

    def producer():
        ch.put("a")
        ch.put("b")  # blocks until the consumer gets "a" at t=5
        times["second_put_done"] = kernel.now()

    def consumer():
        kernel.sleep(5.0)
        assert ch.get() == "a"
        kernel.sleep(5.0)
        assert ch.get() == "b"

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()
    assert times["second_put_done"] == 5.0


def test_get_blocks_until_put():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel)
    times = {}

    def consumer():
        value = ch.get()
        times["got"] = (kernel.now(), value)

    def producer():
        kernel.sleep(3.0)
        ch.put(99)

    kernel.spawn(consumer)
    kernel.spawn(producer)
    kernel.run()
    assert times["got"] == (3.0, 99)


def test_rendezvous_capacity_zero():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, capacity=0, name="rendezvous")
    times = {}

    def producer():
        ch.put("x")
        times["put_done"] = kernel.now()

    def consumer():
        kernel.sleep(7.0)
        assert ch.get() == "x"

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()
    assert times["put_done"] == 7.0


def test_multiple_getters_served_fifo():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel)
    got = []

    def getter(tag):
        got.append((tag, ch.get()))

    def putter():
        kernel.sleep(1.0)
        for i in range(3):
            ch.put(i)

    # spawn order defines getter queue order
    for tag in "abc":
        kernel.spawn(getter, tag)
    kernel.spawn(putter)
    kernel.run()
    assert got == [("a", 0), ("b", 1), ("c", 2)]


def test_try_get_and_try_put():
    def body(kernel):
        ch = Channel(kernel, capacity=1)
        ok, item = ch.try_get()
        assert (ok, item) == (False, None)
        assert ch.try_put("x") is True
        assert ch.try_put("y") is False  # full
        ok, item = ch.try_get()
        assert (ok, item) == (True, "x")
        return True

    assert run_in_kernel(body)


def test_close_wakes_blocked_getter():
    kernel = VirtualTimeKernel()
    outcome = {}

    ch = Channel(kernel, name="closing")

    def getter():
        try:
            ch.get()
        except ChannelClosed:
            outcome["raised_at"] = kernel.now()

    def closer():
        kernel.sleep(2.0)
        ch.close()

    kernel.spawn(getter)
    kernel.spawn(closer)
    kernel.run()
    assert outcome["raised_at"] == 2.0


def test_close_drains_buffered_items_first():
    def body(kernel):
        ch = Channel(kernel, capacity=5)
        ch.put(1)
        ch.put(2)
        ch.close()
        out = [ch.get(), ch.get()]
        with pytest.raises(ChannelClosed):
            ch.get()
        return out

    assert run_in_kernel(body) == [1, 2]


def test_put_on_closed_channel_raises():
    def body(kernel):
        ch = Channel(kernel)
        ch.close()
        with pytest.raises(ChannelClosed):
            ch.put(1)
        return True

    assert run_in_kernel(body)


def test_close_wakes_blocked_putter():
    kernel = VirtualTimeKernel()
    outcome = {}
    ch = Channel(kernel, capacity=0, name="rv")

    def putter():
        try:
            ch.put("never")
        except ChannelClosed:
            outcome["raised"] = True

    def closer():
        kernel.sleep(1.0)
        ch.close()

    kernel.spawn(putter)
    kernel.spawn(closer)
    kernel.run()
    assert outcome == {"raised": True}


def test_close_idempotent():
    def body(kernel):
        ch = Channel(kernel)
        ch.close()
        ch.close()
        return ch.closed

    assert run_in_kernel(body)


def test_negative_capacity_rejected():
    kernel = VirtualTimeKernel()
    with pytest.raises(ValueError):
        Channel(kernel, capacity=-1)


def test_delivered_counter():
    def body(kernel):
        ch = Channel(kernel, capacity=10)
        for i in range(4):
            ch.put(i)
        for _ in range(4):
            ch.get()
        return ch.delivered

    assert run_in_kernel(body) == 4


def test_producer_consumer_pipeline_timing():
    """Producer takes 1 s/item, consumer 2 s/item: pipelined total for 4
    items should be 1 + 4*2 = 9 s, not (1+2)*4 = 12 s."""
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, capacity=4)

    def producer():
        for i in range(4):
            kernel.sleep(1.0)
            ch.put(i)

    def consumer():
        for _ in range(4):
            ch.get()
            kernel.sleep(2.0)

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()
    assert kernel.now() == pytest.approx(9.0)


def test_unfed_channel_deadlocks_with_diagnostics():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, name="starved")
    kernel.spawn(lambda: ch.get(), name="hungry")
    with pytest.raises(DeadlockError) as exc_info:
        kernel.run()
    assert "starved" in str(exc_info.value)
