"""Tests for the execution tracer (timelines, busy accounting, Gantt)."""

import pytest

from repro.sim import Channel, Tracer, VirtualTimeKernel
from repro.sim.trace import FINISH, PARK, RESUME, SPAWN


def traced_kernel():
    tracer = Tracer()
    return VirtualTimeKernel(tracer=tracer), tracer


def test_events_recorded_in_order():
    kernel, tracer = traced_kernel()

    def proc():
        kernel.sleep(1.0)

    kernel.spawn(proc, name="p")
    kernel.run()
    kinds = [ev.kind for ev in tracer.events if ev.process == "p"]
    assert kinds == [SPAWN, RESUME, PARK, RESUME, FINISH]
    park = next(ev for ev in tracer.events if ev.kind == PARK)
    assert "sleep" in park.detail


def test_intervals_reconstruct_sleep():
    kernel, tracer = traced_kernel()

    def proc():
        kernel.sleep(2.0)

    kernel.spawn(proc, name="p")
    kernel.run()
    work = [iv for iv in tracer.intervals("p") if iv.state == "work"]
    assert len(work) == 1
    assert "sleep" in work[0].detail
    assert work[0].duration == pytest.approx(2.0)


def test_busy_time_of_worker_vs_waiter():
    kernel, tracer = traced_kernel()
    ch = Channel(kernel, name="ch")

    def worker():
        kernel.sleep(3.0)   # parked: not busy
        ch.put("x")

    def waiter():
        ch.get()            # parked the whole 3 seconds

    kernel.spawn(worker, name="worker")
    kernel.spawn(waiter, name="waiter")
    kernel.run()
    # the worker's sleep is timed work; the waiter idles on the channel
    assert tracer.busy_time("worker") == pytest.approx(3.0)
    assert tracer.busy_time("waiter") == pytest.approx(0.0)
    assert tracer.span() == (0.0, 3.0)


def test_process_names_in_first_appearance_order():
    kernel, tracer = traced_kernel()
    for name in ("alpha", "beta", "gamma"):
        kernel.spawn(lambda: kernel.sleep(0.5), name=name)
    kernel.run()
    assert tracer.process_names() == ["alpha", "beta", "gamma"]


def test_gantt_renders_rows_for_all_processes():
    kernel, tracer = traced_kernel()

    def proc(d):
        kernel.sleep(d)

    kernel.spawn(proc, 1.0, name="short")
    kernel.spawn(proc, 4.0, name="long")
    kernel.run()
    chart = tracer.gantt(width=40)
    lines = chart.splitlines()
    assert len(lines) == 3  # header + 2 rows
    assert "short" in lines[1] and "long" in lines[2]
    # sleeps are timed work; the long sleeper works across the whole
    # chart, the short one finishes a quarter of the way in
    assert lines[2].count("#") > lines[1].count("#")
    assert lines[1].count(" ") > lines[2].count(" ")


def test_gantt_width_validation_and_empty():
    tracer = Tracer()
    with pytest.raises(ValueError):
        tracer.gantt(width=4)
    assert "zero-duration" in tracer.gantt()


def test_utilization_report_lists_processes():
    kernel, tracer = traced_kernel()
    kernel.spawn(lambda: kernel.sleep(1.0), name="only")
    kernel.run()
    report = tracer.utilization_report()
    assert "only" in report
    assert "busy%" in report


def test_tracing_does_not_change_timing():
    def run(tracer):
        kernel = VirtualTimeKernel(tracer=tracer)
        ch = Channel(kernel, capacity=2)

        def producer():
            for i in range(10):
                kernel.sleep(0.5)
                ch.put(i)

        def consumer():
            for _ in range(10):
                ch.get()
                kernel.sleep(0.7)

        kernel.spawn(producer)
        kernel.spawn(consumer)
        kernel.run()
        return kernel.now()

    assert run(None) == run(Tracer())
