"""Unit tests for the real-time kernel (time_scale=0 for speed)."""

import pytest

from repro.errors import KernelStateError, ProcessFailed
from repro.sim import Channel, RealTimeKernel, Resource


def test_basic_run_and_result():
    kernel = RealTimeKernel(time_scale=0.0)
    proc = kernel.spawn(lambda: "done")
    kernel.run(timeout=10.0)
    assert proc.result == "done"


def test_sleep_and_clock_monotonic():
    kernel = RealTimeKernel(time_scale=0.0)
    stamps = []

    def proc():
        stamps.append(kernel.now())
        kernel.sleep(100.0)  # scaled to zero real time
        stamps.append(kernel.now())

    kernel.spawn(proc)
    kernel.run(timeout=10.0)
    assert stamps[1] >= stamps[0]


def test_time_scale_sleeps_real_time():
    import time

    kernel = RealTimeKernel(time_scale=0.01)
    kernel.spawn(lambda: kernel.sleep(5.0))  # 0.05 s real
    t0 = time.monotonic()
    kernel.run(timeout=10.0)
    assert time.monotonic() - t0 >= 0.04


def test_channel_across_real_threads():
    kernel = RealTimeKernel(time_scale=0.0)
    ch = Channel(kernel, capacity=2)
    got = []

    def producer():
        for i in range(20):
            ch.put(i)

    def consumer():
        for _ in range(20):
            got.append(ch.get())

    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run(timeout=30.0)
    assert got == list(range(20))


def test_resource_mutual_exclusion():
    kernel = RealTimeKernel(time_scale=0.0)
    res = Resource(kernel, capacity=1)
    inside = []
    max_inside = []

    def proc():
        for _ in range(50):
            with res.request():
                inside.append(1)
                max_inside.append(len(inside))
                inside.pop()

    for _ in range(4):
        kernel.spawn(proc)
    kernel.run(timeout=30.0)
    assert max(max_inside) == 1


def test_failure_propagates_and_aborts():
    kernel = RealTimeKernel(time_scale=0.0)
    ch = Channel(kernel, name="never")

    def starving():
        ch.get()

    def failing():
        raise ValueError("nope")

    kernel.spawn(starving)
    kernel.spawn(failing, name="failing")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run(timeout=10.0)
    assert "failing" in str(exc_info.value)


def test_watchdog_fires_on_hung_program():
    kernel = RealTimeKernel(time_scale=0.0)
    ch = Channel(kernel, name="hung-queue")
    kernel.spawn(lambda: ch.get(), name="hung")
    with pytest.raises(KernelStateError) as exc_info:
        kernel.run(timeout=0.2)
    assert "hung" in str(exc_info.value)


def test_join_across_threads():
    kernel = RealTimeKernel(time_scale=0.0)
    results = []

    def worker():
        kernel.sleep(1.0)
        return 5

    def waiter(wp):
        results.append(wp.join())

    wp = kernel.spawn(worker)
    kernel.spawn(waiter, wp)
    kernel.run(timeout=10.0)
    assert results == [5]


def test_negative_time_scale_rejected():
    with pytest.raises(ValueError):
        RealTimeKernel(time_scale=-1.0)
