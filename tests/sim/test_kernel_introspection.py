"""Introspection and bookkeeping details of the kernels."""

import pytest

from repro.sim import Process, ProcessState, VirtualTimeKernel


def test_in_process_distinguishes_threads():
    kernel = VirtualTimeKernel()
    observations = {}

    def proc():
        observations["inside"] = kernel.in_process()

    kernel.spawn(proc)
    assert not kernel.in_process()
    kernel.run()
    assert observations["inside"] is True


def test_processes_snapshot_is_a_copy():
    kernel = VirtualTimeKernel()
    kernel.spawn(lambda: None, name="a")
    snapshot = kernel.processes
    kernel.spawn(lambda: None, name="b")
    assert [p.name for p in snapshot] == ["a"]
    assert [p.name for p in kernel.processes] == ["a", "b"]
    kernel.run()


def test_process_states_progress():
    kernel = VirtualTimeKernel()
    proc = kernel.spawn(lambda: kernel.sleep(1.0), name="p")
    assert proc.state is ProcessState.NEW
    assert proc.alive
    kernel.run()
    assert proc.state is ProcessState.DONE
    assert not proc.alive


def test_failed_process_state_and_exception():
    kernel = VirtualTimeKernel()

    def boom():
        raise RuntimeError("x")

    proc = kernel.spawn(boom)
    with pytest.raises(Exception):
        kernel.run()
    assert proc.state is ProcessState.FAILED
    assert isinstance(proc.exception, RuntimeError)


def test_switch_counter_grows_with_activity():
    kernel = VirtualTimeKernel()

    def proc():
        for _ in range(10):
            kernel.sleep(0.1)

    kernel.spawn(proc)
    kernel.run()
    assert kernel.switches >= 10


def test_default_process_names_are_unique():
    kernel = VirtualTimeKernel()
    procs = [kernel.spawn(lambda: None) for _ in range(5)]
    names = [p.name for p in procs]
    assert len(set(names)) == 5
    kernel.run()


def test_waiting_on_is_cleared_after_resume():
    kernel = VirtualTimeKernel()
    seen = {}

    def proc():
        kernel.sleep(1.0)
        seen["after"] = kernel.current_process().waiting_on

    kernel.spawn(proc)
    kernel.run()
    assert seen["after"] is None
