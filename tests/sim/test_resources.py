"""Unit tests for counted resources: contention, fairness, accounting."""

import pytest

from repro.sim import Resource, VirtualTimeKernel


def test_uncontended_acquire_is_immediate():
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=2)
    times = []

    def proc():
        with res.request():
            times.append(kernel.now())
            kernel.sleep(1.0)

    kernel.spawn(proc)
    kernel.spawn(proc)
    kernel.run()
    assert times == [0.0, 0.0]
    assert kernel.now() == 1.0


def test_contention_serializes():
    """Three 2-second jobs on a capacity-1 resource take 6 seconds."""
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=1, name="disk-arm")
    starts = []

    def proc():
        with res.request():
            starts.append(kernel.now())
            kernel.sleep(2.0)

    for _ in range(3):
        kernel.spawn(proc)
    kernel.run()
    assert starts == [0.0, 2.0, 4.0]
    assert kernel.now() == 6.0


def test_fifo_fairness():
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=1)
    order = []

    def proc(tag, arrive):
        kernel.sleep(arrive)
        with res.request():
            order.append(tag)
            kernel.sleep(10.0)

    kernel.spawn(proc, "first", 0.0)
    kernel.spawn(proc, "second", 1.0)
    kernel.spawn(proc, "third", 2.0)
    kernel.run()
    assert order == ["first", "second", "third"]


def test_multi_unit_acquire_head_of_line():
    """A 2-unit request at the head is not overtaken by later 1-unit ones."""
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=2, name="cores")
    order = []

    def holder():
        res.acquire(2)
        kernel.sleep(5.0)
        res.release(2)

    def big():
        kernel.sleep(1.0)
        res.acquire(2)
        order.append(("big", kernel.now()))
        kernel.sleep(1.0)
        res.release(2)

    def small():
        kernel.sleep(2.0)  # arrives after big is queued
        res.acquire(1)
        order.append(("small", kernel.now()))
        res.release(1)

    kernel.spawn(holder)
    kernel.spawn(big)
    kernel.spawn(small)
    kernel.run()
    assert order == [("big", 5.0), ("small", 6.0)]


def test_release_overflow_rejected():
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=1)

    def proc():
        res.release(1)  # nothing acquired

    kernel.spawn(proc)
    with pytest.raises(Exception) as exc_info:
        kernel.run()
    assert "overflow" in str(exc_info.value.original)


def test_acquire_more_than_capacity_rejected():
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=2)

    def proc():
        res.acquire(3)

    kernel.spawn(proc)
    with pytest.raises(Exception) as exc_info:
        kernel.run()
    assert "capacity" in str(exc_info.value.original)


def test_capacity_below_one_rejected():
    kernel = VirtualTimeKernel()
    with pytest.raises(ValueError):
        Resource(kernel, capacity=0)


def test_utilization_accounting():
    """One process holds a capacity-1 resource for 3 s of a 6 s run."""
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=1)

    def proc():
        kernel.sleep(1.0)
        with res.request():
            kernel.sleep(3.0)
        kernel.sleep(2.0)

    kernel.spawn(proc)
    kernel.run()
    assert kernel.now() == 6.0
    assert res.busy_time() == pytest.approx(3.0)
    assert res.utilization(6.0) == pytest.approx(0.5)


def test_utilization_with_parallel_holders():
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=2)

    def proc():
        with res.request():
            kernel.sleep(4.0)

    kernel.spawn(proc)
    kernel.spawn(proc)
    kernel.run()
    assert res.busy_time() == pytest.approx(8.0)  # 2 units x 4 s
    assert res.utilization(4.0) == pytest.approx(1.0)


def test_acquisitions_counter():
    kernel = VirtualTimeKernel()
    res = Resource(kernel, capacity=1)

    def proc():
        for _ in range(5):
            with res.request():
                kernel.sleep(0.1)

    kernel.spawn(proc)
    kernel.run()
    assert res.acquisitions == 5
