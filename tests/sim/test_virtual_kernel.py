"""Unit tests for the virtual-time kernel: clock, scheduling, determinism."""

import pytest

from repro.errors import DeadlockError, KernelStateError, ProcessFailed
from repro.sim import Channel, VirtualTimeKernel


def test_empty_kernel_runs_and_finishes():
    kernel = VirtualTimeKernel()
    kernel.run()
    assert kernel.now() == 0.0


def test_single_process_advances_clock():
    kernel = VirtualTimeKernel()
    seen = []

    def proc():
        kernel.sleep(1.5)
        seen.append(kernel.now())
        kernel.sleep(2.5)
        seen.append(kernel.now())

    kernel.spawn(proc)
    kernel.run()
    assert seen == [1.5, 4.0]
    assert kernel.now() == 4.0


def test_clock_is_simulated_not_wall_clock():
    import time

    kernel = VirtualTimeKernel()
    kernel.spawn(lambda: kernel.sleep(3600.0))
    t0 = time.monotonic()
    kernel.run()
    assert kernel.now() == 3600.0
    assert time.monotonic() - t0 < 5.0  # an hour simulated in < 5 s real


def test_parallel_sleeps_overlap():
    """Two processes sleeping concurrently finish at max, not sum."""
    kernel = VirtualTimeKernel()
    ends = {}

    def proc(name, dur):
        kernel.sleep(dur)
        ends[name] = kernel.now()

    kernel.spawn(proc, "a", 5.0)
    kernel.spawn(proc, "b", 3.0)
    kernel.run()
    assert ends == {"a": 5.0, "b": 3.0}
    assert kernel.now() == 5.0


def test_sequential_dependency_via_join():
    kernel = VirtualTimeKernel()
    order = []

    def worker():
        kernel.sleep(2.0)
        order.append(("worker", kernel.now()))
        return 42

    def waiter(worker_proc):
        result = worker_proc.join()
        order.append(("waiter", kernel.now(), result))

    wp = kernel.spawn(worker)
    kernel.spawn(waiter, wp)
    kernel.run()
    assert order == [("worker", 2.0), ("waiter", 2.0, 42)]


def test_join_already_finished_process():
    kernel = VirtualTimeKernel()
    results = []

    def quick():
        return "done"

    def late(qp):
        kernel.sleep(10.0)
        results.append(qp.join())

    qp = kernel.spawn(quick)
    kernel.spawn(late, qp)
    kernel.run()
    assert results == ["done"]


def test_process_result_and_name():
    kernel = VirtualTimeKernel()
    proc = kernel.spawn(lambda: 7, name="lucky")
    kernel.run()
    assert proc.result == 7
    assert proc.name == "lucky"
    assert not proc.alive


def test_spawn_from_inside_process():
    kernel = VirtualTimeKernel()
    log = []

    def child(tag):
        kernel.sleep(1.0)
        log.append((tag, kernel.now()))

    def parent():
        kernel.sleep(1.0)
        kids = [kernel.spawn(child, i) for i in range(3)]
        for kid in kids:
            kid.join()
        log.append(("parent", kernel.now()))

    kernel.spawn(parent)
    kernel.run()
    assert ("parent", 2.0) in log
    assert sorted(log[:-1]) == [(0, 2.0), (1, 2.0), (2, 2.0)]


def test_process_failure_propagates():
    kernel = VirtualTimeKernel()

    def boom():
        kernel.sleep(1.0)
        raise ValueError("kapow")

    def innocent():
        kernel.sleep(100.0)

    kernel.spawn(boom, name="boom")
    kernel.spawn(innocent)
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert "boom" in str(exc_info.value)
    assert isinstance(exc_info.value.original, ValueError)


def test_failure_aborts_blocked_processes_cleanly():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, name="never-fed")

    def starving():
        ch.get()  # blocks forever

    def failing():
        kernel.sleep(1.0)
        raise RuntimeError("fail fast")

    kernel.spawn(starving)
    kernel.spawn(failing)
    with pytest.raises(ProcessFailed):
        kernel.run()
    # all threads must have unwound (no leak)
    for proc in kernel.processes:
        assert not proc.alive


def test_deadlock_detection_names_processes():
    kernel = VirtualTimeKernel()
    ch = Channel(kernel, name="orphan-queue")

    def starving():
        ch.get()

    kernel.spawn(starving, name="starving-stage")
    with pytest.raises(DeadlockError) as exc_info:
        kernel.run()
    message = str(exc_info.value)
    assert "starving-stage" in message
    assert "orphan-queue" in message


def test_negative_sleep_rejected():
    kernel = VirtualTimeKernel()

    def proc():
        kernel.sleep(-1.0)

    kernel.spawn(proc)
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    assert isinstance(exc_info.value.original, ValueError)


def test_blocking_primitive_outside_process_rejected():
    kernel = VirtualTimeKernel()
    with pytest.raises(KernelStateError):
        kernel.sleep(1.0)


def test_run_twice_rejected():
    kernel = VirtualTimeKernel()
    kernel.run()
    with pytest.raises(KernelStateError):
        kernel.run()


def test_spawn_after_finish_rejected():
    kernel = VirtualTimeKernel()
    kernel.run()
    with pytest.raises(KernelStateError):
        kernel.spawn(lambda: None)


def test_zero_sleep_yields_but_keeps_time():
    kernel = VirtualTimeKernel()
    order = []

    def proc(tag):
        for _ in range(3):
            order.append((tag, kernel.now()))
            kernel.sleep(0.0)

    kernel.spawn(proc, "a")
    kernel.spawn(proc, "b")
    kernel.run()
    assert kernel.now() == 0.0
    assert len(order) == 6
    # zero-sleeps interleave the two processes
    tags = [t for t, _ in order]
    assert tags != ["a", "a", "a", "b", "b", "b"]


def test_determinism_identical_timelines():
    def build_and_run():
        kernel = VirtualTimeKernel()
        trace = []
        ch = Channel(kernel, capacity=2, name="ch")

        def producer(tag, delay):
            for i in range(5):
                kernel.sleep(delay)
                ch.put((tag, i))

        def consumer():
            for _ in range(10):
                item = ch.get()
                trace.append((kernel.now(), item))

        kernel.spawn(producer, "x", 0.3)
        kernel.spawn(producer, "y", 0.7)
        kernel.spawn(consumer)
        kernel.run()
        return trace

    assert build_and_run() == build_and_run()


def test_many_processes_scale():
    kernel = VirtualTimeKernel()
    done = []

    def proc(i):
        kernel.sleep(float(i % 7))
        done.append(i)

    for i in range(200):
        kernel.spawn(proc, i)
    kernel.run()
    assert sorted(done) == list(range(200))
    assert kernel.now() == 6.0
