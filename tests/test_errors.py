"""The exception hierarchy contract: everything under ReproError."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    ChannelClosed,
    ColumnsortShapeError,
    CommError,
    DeadlockError,
    DiskError,
    KernelError,
    ProcessFailed,
    ReproError,
    SortError,
    StorageError,
    VerificationError,
)


def all_error_classes():
    return [obj for _, obj in inspect.getmembers(errors_module,
                                                 inspect.isclass)
            if issubclass(obj, Exception)]


def test_every_library_error_derives_from_repro_error():
    for cls in all_error_classes():
        assert issubclass(cls, ReproError), cls


def test_catching_the_base_catches_everything():
    for cls in (DeadlockError, CommError, DiskError, StorageError,
                SortError, ColumnsortShapeError, VerificationError,
                ChannelClosed):
        with pytest.raises(ReproError):
            raise cls("x")


def test_process_failed_wraps_original():
    original = ValueError("inner")
    wrapped = ProcessFailed("stage-x", original)
    assert wrapped.original is original
    assert wrapped.process_name == "stage-x"
    assert "stage-x" in str(wrapped)
    assert isinstance(wrapped, KernelError)


def test_subfamily_relationships():
    assert issubclass(DeadlockError, KernelError)
    assert issubclass(CommError, ReproError)
    assert issubclass(ColumnsortShapeError, SortError)
