"""The exception hierarchy contract: everything under ReproError."""

import inspect

import pytest

import repro
import repro.errors as errors_module
from repro.errors import (
    ChannelClosed,
    ColumnsortShapeError,
    CommError,
    DeadlockError,
    DiskError,
    FaultError,
    FaultInjected,
    KernelError,
    PipelineFailed,
    ProcessFailed,
    ReproError,
    RetryExhausted,
    SortError,
    StageFailure,
    StorageError,
    VerificationError,
)


def all_error_classes():
    return [obj for _, obj in inspect.getmembers(errors_module,
                                                 inspect.isclass)
            if issubclass(obj, Exception)]


def test_every_library_error_derives_from_repro_error():
    for cls in all_error_classes():
        assert issubclass(cls, ReproError), cls


def test_catching_the_base_catches_everything():
    for cls in (DeadlockError, CommError, DiskError, StorageError,
                SortError, ColumnsortShapeError, VerificationError,
                ChannelClosed):
        with pytest.raises(ReproError):
            raise cls("x")


def test_process_failed_wraps_original():
    original = ValueError("inner")
    wrapped = ProcessFailed("stage-x", original)
    assert wrapped.original is original
    assert wrapped.process_name == "stage-x"
    assert "stage-x" in str(wrapped)
    assert isinstance(wrapped, KernelError)


def test_subfamily_relationships():
    assert issubclass(DeadlockError, KernelError)
    assert issubclass(CommError, ReproError)
    assert issubclass(ColumnsortShapeError, SortError)
    assert issubclass(FaultInjected, FaultError)
    assert issubclass(RetryExhausted, FaultError)
    assert issubclass(PipelineFailed, ReproError)


def test_fault_injected_carries_site_rank_and_permanence():
    transient = FaultInjected("media error", site="disk.2", rank=2)
    assert (transient.site, transient.rank) == ("disk.2", 2)
    assert not transient.permanent
    assert "transient disk.2 fault at rank 2" in str(transient)
    permanent = FaultInjected("dead", site="net.0->1", rank=0,
                              permanent=True)
    assert permanent.permanent
    assert "permanent" in str(permanent)


def test_retry_exhausted_wraps_the_last_fault():
    last = FaultInjected("boom", site="disk.0", rank=0)
    err = RetryExhausted("disk read", 4, last)
    assert (err.op, err.attempts, err.last) == ("disk read", 4, last)
    assert "after 4 attempt" in str(err)


def test_pipeline_failed_causal_chain():
    causes = [RuntimeError("one"), RuntimeError("two")]
    err = PipelineFailed([StageFailure("pass1.read", "read", causes[0]),
                          StageFailure("pass1.read", "send", causes[1])])
    assert err.pipelines == ["pass1.read"]  # deduplicated
    assert err.__cause__ is causes[0]
    assert "pass1.read" in str(err) and "'read'" in str(err)


def test_stage_failure_is_a_record_not_an_exception():
    # it describes *where* a failure happened; raising it makes no sense
    assert not issubclass(StageFailure, BaseException)
    entry = StageFailure("p", "s", ValueError("x"))
    assert "pipeline 'p'" in str(entry) and "stage 's'" in str(entry)


def test_robustness_errors_exported_at_top_level():
    assert repro.FaultInjected is FaultInjected
    assert repro.RetryExhausted is RetryExhausted
    assert repro.PipelineFailed is PipelineFailed
    for name in ("ReproError", "FaultInjected", "RetryExhausted",
                 "PipelineFailed"):
        assert name in repro.__all__
