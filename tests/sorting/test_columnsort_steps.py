"""Tests for the columnsort mathematics (shapes, steps, piece routing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ColumnsortShapeError
from repro.sorting.columnsort.steps import (
    ColumnsortPlan,
    plan_columnsort,
    reference_columnsort,
    transpose_pieces,
    untranspose_pieces,
    validate_shape,
)


def test_reference_columnsort_sorts():
    rng = np.random.default_rng(0)
    r, s = 32, 4  # r >= 2(s-1)^2 = 18, r % s == 0
    keys = rng.integers(0, 1000, size=r * s).astype(np.uint64)
    out = reference_columnsort(keys, r, s)
    np.testing.assert_array_equal(out, np.sort(keys))


def test_reference_columnsort_with_ties():
    r, s = 32, 4
    keys = np.array([5] * 64 + [3] * 32 + [9] * 32, dtype=np.uint64)
    out = reference_columnsort(keys, r, s)
    np.testing.assert_array_equal(out, np.sort(keys))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32),
       st.sampled_from([(8, 2), (32, 4), (128, 4), (72, 6)]))
def test_property_reference_columnsort(seed, shape):
    r, s = shape
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 50, size=r * s).astype(np.uint64)
    out = reference_columnsort(keys, r, s)
    np.testing.assert_array_equal(out, np.sort(keys))


def test_validate_shape_rules():
    validate_shape(128, 32, 4, 2)
    with pytest.raises(ColumnsortShapeError):
        validate_shape(128, 16, 4, 2)    # r*s != N
    with pytest.raises(ColumnsortShapeError):
        validate_shape(128, 32, 4, 3)    # s not multiple of P
    with pytest.raises(ColumnsortShapeError):
        validate_shape(72, 18, 4, 2)     # r % s != 0
    with pytest.raises(ColumnsortShapeError):
        validate_shape(18, 9, 2, 2)      # r odd
    with pytest.raises(ColumnsortShapeError):
        validate_shape(64, 8, 8, 2)      # r < 2(s-1)^2


def test_plan_columnsort_picks_largest_legal_s():
    plan = plan_columnsort(2**22, 16)
    assert plan.s == 128
    assert plan.r == 2**22 // 128
    validate_shape(plan.n_records, plan.r, plan.s, plan.n_nodes)


def test_plan_columnsort_small_cases():
    plan = plan_columnsort(128, 2)
    validate_shape(128, plan.r, plan.s, 2)
    assert plan.owner(plan.s - 1) == (plan.s - 1) % 2
    assert plan.cols_per_node * 2 == plan.s


def test_plan_columnsort_impossible():
    with pytest.raises(ColumnsortShapeError):
        plan_columnsort(3, 2)
    with pytest.raises(ColumnsortShapeError):
        plan_columnsort(2**10 + 1, 2)  # odd prime-ish, no divisor works


def test_transpose_pieces_balanced_and_complete():
    plan = ColumnsortPlan(n_records=128, r=32, s=4, n_nodes=2)
    col = np.arange(32, dtype=np.uint64)
    pieces = transpose_pieces(col, column=1, plan=plan)
    assert len(pieces) == 4
    assert all(len(p) == 8 for p in pieces)
    # row i goes to column i % s
    np.testing.assert_array_equal(pieces[1], np.arange(1, 32, 4))
    # pieces partition the column
    np.testing.assert_array_equal(np.sort(np.concatenate(pieces)), col)


def test_untranspose_pieces_contiguous_and_complete():
    plan = ColumnsortPlan(n_records=128, r=32, s=4, n_nodes=2)
    col = np.arange(32, dtype=np.uint64)
    for c in range(4):
        pieces = untranspose_pieces(col, column=c, plan=plan)
        assert len(pieces) == 4
        assert sum(len(p) for p in pieces) == 32
        assert all(len(p) == 8 for p in pieces)
        np.testing.assert_array_equal(np.concatenate(pieces), col)
        # routing matches the formula j = (i*s + c) // r
        i = 0
        for j, piece in enumerate(pieces):
            for _ in range(len(piece)):
                assert (i * 4 + c) // 32 == j
                i += 1


def test_piece_functions_reject_wrong_length():
    plan = ColumnsortPlan(n_records=128, r=32, s=4, n_nodes=2)
    with pytest.raises(ColumnsortShapeError):
        transpose_pieces(np.arange(31, dtype=np.uint64), 0, plan)
    with pytest.raises(ColumnsortShapeError):
        untranspose_pieces(np.arange(33, dtype=np.uint64), 0, plan)


def test_plan_geometry_helpers():
    plan = ColumnsortPlan(n_records=256, r=64, s=4, n_nodes=2)
    assert plan.cols_per_node == 2
    assert plan.frag_records == 16
    assert [plan.owner(j) for j in range(4)] == [0, 1, 0, 1]
    assert [plan.local_round(j) for j in range(4)] == [0, 0, 1, 1]
