"""Tests for the NOW-Sort-style variant (fixed splitters, local output)."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.errors import SortError, VerificationError
from repro.pdm.records import RecordSchema
from repro.sorting.dsort import (
    DsortConfig,
    Splitters,
    run_nowsort,
    uniform_splitters,
)
from repro.sorting.verify import verify_partitioned_output
from repro.workloads.generator import generate_input

SCHEMA = RecordSchema.paper_16()


def fast_hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


def run_case(distribution, n_nodes=4, n_per_node=2000, splitters=None,
             seed=0):
    cluster = Cluster(n_nodes=n_nodes, hardware=fast_hw())
    manifest = generate_input(cluster, SCHEMA, n_per_node, distribution,
                              seed=seed)
    config = DsortConfig(block_records=256, vertical_block_records=64,
                         out_block_records=256)
    reports = cluster.run(run_nowsort, SCHEMA, config, splitters)
    verify_partitioned_output(cluster, manifest, config.output_file)
    return cluster, reports


def test_nowsort_sorts_uniform_input():
    _, reports = run_case("uniform")
    # uniform keys + uniform splitters: balanced within sampling noise
    sizes = [r.partition_records for r in reports]
    assert max(sizes) <= 1.2 * (sum(sizes) / len(sizes))


def test_nowsort_no_sampling_phase():
    _, reports = run_case("uniform")
    for rep in reports:
        assert not hasattr(rep, "sampling_time")
        assert rep.pass1_time > 0 and rep.pass2_time > 0


def test_nowsort_skewed_input_is_correct_but_unbalanced():
    """std-normal keys against uniform splitters: the middle nodes drown
    (NOW-Sort's stated weakness), yet the output is still correct."""
    _, reports = run_case("std_normal")
    sizes = [r.partition_records for r in reports]
    assert max(sizes) > 1.5 * (sum(sizes) / len(sizes))


def test_nowsort_custom_splitters():
    keys = np.array([100, 200, 300], dtype=np.uint64)
    splitters = Splitters(keys=keys,
                          nodes=np.zeros(3, dtype=np.int64),
                          indices=np.zeros(3, dtype=np.int64))
    cluster, _ = run_case("poisson", n_nodes=4, splitters=splitters)
    # Poisson(1) keys are tiny, so everything lands on node 0
    from repro.pdm.blockfile import RecordFile
    n0 = RecordFile(cluster.node(0).disk, "output", SCHEMA).n_records
    assert n0 == 4 * 2000


def test_nowsort_wrong_splitter_count_rejected():
    splitters = uniform_splitters(3)  # for a 4-node cluster -> wrong
    cluster = Cluster(n_nodes=4, hardware=fast_hw())
    generate_input(cluster, SCHEMA, 100, "uniform")
    with pytest.raises(Exception) as exc_info:
        cluster.run(run_nowsort, SCHEMA, DsortConfig(block_records=64,
                                                     oversample=1),
                    splitters)
    assert isinstance(exc_info.value.original, SortError)


def test_uniform_splitters_shape():
    sp = uniform_splitters(8)
    assert sp.n_partitions == 8
    assert len(sp.keys) == 7
    assert (np.diff(sp.keys.astype(np.float64)) > 0).all()
    with pytest.raises(SortError):
        uniform_splitters(0)


def test_verify_partitioned_output_catches_order_violation():
    cluster, _ = run_case("uniform")
    # corrupt node 0's last record with the max key
    from repro.pdm.blockfile import RecordFile
    rf = RecordFile(cluster.node(0).disk, "output", SCHEMA)
    rf.poke(rf.n_records - 1,
            SCHEMA.from_keys(np.array([2**64 - 1], dtype=np.uint64)))
    from repro.workloads.generator import DatasetManifest  # noqa: F401
    manifest = generate_input(  # regenerate manifest object only
        Cluster(n_nodes=4, hardware=fast_hw()), SCHEMA, 2000, "uniform",
        seed=0)
    with pytest.raises(VerificationError):
        verify_partitioned_output(cluster, manifest, "output")
