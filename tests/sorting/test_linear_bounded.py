"""The strongest form of the Section-VIII argument: under realistic
(bounded) message buffering, dsort restricted to single linear pipelines
doesn't just slow down — it can deadlock, because its exchange stage
couples sending and receiving in one thread.  The multi-pipeline dsort,
whose receive pipeline drains continuously, completes at the same
capacity.  The virtual-time kernel's deadlock detector diagnoses the cycle
precisely.
"""

import pytest

from repro.cluster import Cluster, HardwareModel
from repro.errors import DeadlockError
from repro.pdm.records import RecordSchema
from repro.sorting.dsort import DsortConfig, run_dsort, run_dsort_linear
from repro.sorting.verify import verify_striped_output
from repro.workloads.generator import generate_input

SCHEMA = RecordSchema.paper_16()
CONFIG = DsortConfig(block_records=128, vertical_block_records=64,
                     out_block_records=128, oversample=8)
TIGHT_CAPACITY = 128 * 16 * 2  # two blocks of records per mailbox


def make_cluster():
    hw = HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                       disk_bandwidth=1e9, disk_seek=1e-5)
    return Cluster(n_nodes=4, hardware=hw,
                   mailbox_capacity_bytes=TIGHT_CAPACITY)


def test_linear_dsort_deadlocks_under_tight_buffering():
    cluster = make_cluster()
    generate_input(cluster, SCHEMA, 2000, "uniform", seed=2)
    with pytest.raises(DeadlockError) as exc_info:
        cluster.run(run_dsort_linear, SCHEMA, CONFIG)
    # the diagnosis names senders stuck reserving mailbox space
    assert "reserve" in str(exc_info.value)
    # and the kernel unwound every thread despite the deadlock
    assert all(not p.alive for p in cluster.kernel.processes)


def test_multi_pipeline_dsort_completes_at_same_capacity():
    cluster = make_cluster()
    manifest = generate_input(cluster, SCHEMA, 2000, "uniform", seed=2)
    cluster.run(run_dsort, SCHEMA, CONFIG)
    verify_striped_output(cluster, manifest, CONFIG.output_file,
                          CONFIG.out_block_records)
