"""Unit tests for the output verifier: each failure mode must be caught
with a precise diagnosis (a verifier that cannot fail proves nothing)."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.errors import VerificationError
from repro.pdm.records import RecordSchema
from repro.pdm.striped import StripedFile
from repro.sorting.verify import verify_records_sorted, verify_striped_output
from repro.workloads.generator import generate_input

SCHEMA = RecordSchema.paper_16()
BLOCK = 8


def make_correct_output(n_nodes=2, n_per_node=32, seed=0):
    """A cluster whose striped 'output' file is the correct sort of its
    generated input."""
    cluster = Cluster(n_nodes=n_nodes, hardware=HardwareModel())
    manifest = generate_input(cluster, SCHEMA, n_per_node, "uniform",
                              seed=seed)
    striped = StripedFile(cluster, "output", SCHEMA, BLOCK)
    records = SCHEMA.from_keys(manifest.sorted_keys)
    total = len(records)
    for b in range(-(-total // BLOCK)):
        lo, hi = b * BLOCK, min((b + 1) * BLOCK, total)
        striped.locals[striped.node_of_block(b)].poke(
            striped.local_block(b) * BLOCK, records[lo:hi])
    return cluster, manifest, striped


def test_correct_output_passes():
    cluster, manifest, _ = make_correct_output()
    verify_striped_output(cluster, manifest, "output", BLOCK)


def test_detects_unsorted_output():
    cluster, manifest, striped = make_correct_output()
    # swap the first two records (they are distinct with high probability)
    first = striped.locals[0].peek(0, 2)
    if first["key"][0] == first["key"][1]:
        pytest.skip("improbable tie")
    striped.locals[0].poke(0, first[::-1].copy())
    with pytest.raises(VerificationError) as exc_info:
        verify_striped_output(cluster, manifest, "output", BLOCK)
    assert "not sorted" in str(exc_info.value) or "multiset" in str(
        exc_info.value)


def test_detects_missing_records():
    cluster, manifest, striped = make_correct_output()
    last = striped.locals[-1]
    last.disk.storage.truncate("output",
                               (last.n_records - 1) * SCHEMA.record_bytes)
    with pytest.raises(VerificationError) as exc_info:
        verify_striped_output(cluster, manifest, "output", BLOCK)
    assert "expected" in str(exc_info.value)


def test_detects_wrong_key_multiset():
    cluster, manifest, striped = make_correct_output()
    # overwrite the globally last record with the maximum key: the output
    # stays sorted but the multiset no longer matches the input
    last_block = striped.total_records() // BLOCK - 1
    last = striped.locals[striped.node_of_block(last_block)]
    rec = SCHEMA.from_keys(np.array([2**64 - 1], dtype=np.uint64))
    last.poke(last.n_records - 1, rec)
    with pytest.raises(VerificationError) as exc_info:
        verify_striped_output(cluster, manifest, "output", BLOCK)
    assert "multiset" in str(exc_info.value)


def test_detects_corrupted_payload():
    cluster, manifest, striped = make_correct_output()
    # flip a payload byte of one record without touching its key
    local = striped.locals[0]
    raw = local.disk.storage.read("output", 8, 1)
    local.disk.storage.write("output", 8,
                             np.array([raw[0] ^ 0xFF], dtype=np.uint8))
    with pytest.raises(VerificationError) as exc_info:
        verify_striped_output(cluster, manifest, "output", BLOCK)
    assert "payload" in str(exc_info.value)


def test_detects_misplaced_striping():
    """Right records, wrong layout: everything on node 0."""
    cluster = Cluster(n_nodes=2, hardware=HardwareModel())
    manifest = generate_input(cluster, SCHEMA, 32, "uniform", seed=1)
    records = SCHEMA.from_keys(manifest.sorted_keys)
    # dump the whole sorted output onto node 0 only
    from repro.pdm.blockfile import RecordFile
    RecordFile(cluster.node(0).disk, "output", SCHEMA).poke(0, records)
    with pytest.raises(VerificationError):
        verify_striped_output(cluster, manifest, "output", BLOCK)


def test_verify_records_sorted_reports_position():
    records = SCHEMA.from_keys(np.array([1, 5, 3], dtype=np.uint64))
    with pytest.raises(VerificationError) as exc_info:
        verify_records_sorted(records, what="runX")
    message = str(exc_info.value)
    assert "runX" in message and "key[1]" in message


def test_verify_records_sorted_accepts_edges():
    verify_records_sorted(SCHEMA.empty(0))
    verify_records_sorted(SCHEMA.empty(1))
    verify_records_sorted(SCHEMA.from_keys(
        np.array([4, 4, 4], dtype=np.uint64)))
