"""Tests for the single-linear-pipeline dsort (Section-VIII ablation).

Correctness must be identical to the multi-pipeline dsort; performance
must be worse (that is the paper's hypothesis the ablation bench tests).
"""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.pdm.records import RecordSchema
from repro.sorting.dsort import DsortConfig, run_dsort, run_dsort_linear
from repro.sorting.verify import verify_striped_output
from repro.workloads.generator import generate_input

SCHEMA = RecordSchema.paper_16()


def run_linear_case(n_nodes=4, n_per_node=2000, distribution="uniform",
                    config=None, seed=0):
    config = config or DsortConfig(block_records=256,
                                   vertical_block_records=64,
                                   out_block_records=256, oversample=32,
                                   seed=seed)
    cluster = Cluster(n_nodes=n_nodes, hardware=HardwareModel(
        net_bandwidth=1e9, net_latency=1e-6,
        disk_bandwidth=1e9, disk_seek=1e-5))
    manifest = generate_input(cluster, SCHEMA, n_per_node, distribution,
                              seed=seed)
    reports = cluster.run(run_dsort_linear, SCHEMA, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
    return cluster, reports, config


@pytest.mark.parametrize("distribution",
                         ["uniform", "all_equal", "poisson"])
def test_linear_dsort_sorts_correctly(distribution):
    run_linear_case(distribution=distribution)


def test_linear_dsort_single_node():
    run_linear_case(n_nodes=1, n_per_node=1000)


def test_linear_dsort_odd_sizes():
    config = DsortConfig(block_records=100, vertical_block_records=37,
                         out_block_records=83, oversample=16)
    run_linear_case(n_nodes=3, n_per_node=997, config=config)


def test_linear_dsort_is_slower_than_multi_pipeline():
    """The Section-VIII hypothesis: multiple pipelines beat single linear
    pipelines, under paper-like hardware where overlap matters."""
    schema = SCHEMA
    config = DsortConfig(block_records=2048, vertical_block_records=512,
                         out_block_records=2048, oversample=16)
    times = {}
    for name, main in (("multi", run_dsort), ("linear", run_dsort_linear)):
        cluster = Cluster(n_nodes=4,
                          hardware=HardwareModel.paper_cluster())
        manifest = generate_input(cluster, schema, 32768, "uniform",
                                  seed=11)
        cluster.run(main, schema, config)
        verify_striped_output(cluster, manifest, config.output_file,
                              config.out_block_records)
        times[name] = cluster.kernel.now()
    assert times["linear"] > times["multi"]
