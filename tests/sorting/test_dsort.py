"""End-to-end tests for dsort: correctness on every distribution, both
record sizes, edge shapes, and the structural claims of Figures 6-7."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.pdm.records import RecordSchema
from repro.sorting.dsort import DsortConfig, run_dsort
from repro.sorting.verify import verify_striped_output
from repro.workloads.distributions import PAPER_DISTRIBUTIONS
from repro.workloads.generator import generate_input


def fast_hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


def run_dsort_case(n_nodes=4, n_per_node=2000, distribution="uniform",
                   schema=None, config=None, seed=0):
    schema = schema or RecordSchema.paper_16()
    config = config or DsortConfig(block_records=256,
                                   vertical_block_records=64,
                                   out_block_records=256,
                                   oversample=32, seed=seed)
    cluster = Cluster(n_nodes=n_nodes, hardware=fast_hw())
    manifest = generate_input(cluster, schema, n_per_node, distribution,
                              seed=seed)
    reports = cluster.run(run_dsort, schema, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
    return cluster, manifest, reports, config


@pytest.mark.parametrize("distribution", PAPER_DISTRIBUTIONS)
def test_dsort_sorts_every_paper_distribution(distribution):
    run_dsort_case(distribution=distribution)


def test_dsort_64_byte_records():
    run_dsort_case(schema=RecordSchema.paper_64(), n_per_node=1000)


def test_dsort_single_node():
    run_dsort_case(n_nodes=1, n_per_node=1500)


def test_dsort_two_nodes_odd_sizes():
    """Input not divisible by block size: partial blocks everywhere."""
    config = DsortConfig(block_records=100, vertical_block_records=33,
                         out_block_records=77, oversample=16)
    run_dsort_case(n_nodes=2, n_per_node=1234, config=config)


def test_dsort_adversarial_skew():
    """90% of keys identical: extended keys keep partitions balanced and
    the output correct."""
    _, _, reports, _ = run_dsort_case(distribution="single_hot_value",
                                      n_nodes=4, n_per_node=2000)
    partitions = [r.partition_records for r in reports]
    assert max(partitions) <= 1.25 * (sum(partitions) / len(partitions))


def test_dsort_report_phase_times_and_runs():
    _, _, reports, _ = run_dsort_case(n_nodes=4, n_per_node=2000)
    for r in reports:
        assert r.sampling_time >= 0
        assert r.pass1_time > 0
        assert r.pass2_time > 0
        assert r.total_time == pytest.approx(
            r.sampling_time + r.pass1_time + r.pass2_time)
        # 2000 received records / 256-record runs -> ~8 runs
        assert r.n_runs >= 1
    # all records accounted for across partitions
    assert sum(r.partition_records for r in reports) == 8000


def test_dsort_sampling_phase_is_negligible():
    """Paper: 'Because these amounts are negligible, numbers corresponding
    to dsort's sampling phase are not shown.'  Checked under paper-like
    hardware (the claim is about realistic disk/network cost ratios)."""
    schema = RecordSchema.paper_16()
    config = DsortConfig(block_records=2048, vertical_block_records=512,
                         out_block_records=2048, oversample=16)
    cluster = Cluster(n_nodes=4, hardware=HardwareModel.paper_cluster())
    manifest = generate_input(cluster, schema, 131072, "uniform", seed=3)
    reports = cluster.run(run_dsort, schema, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
    for r in reports:
        assert r.sampling_time < 0.05 * r.total_time


def test_dsort_two_passes_of_io():
    """dsort reads and writes each record exactly twice (the two-pass
    advantage over csort's three)."""
    cluster, manifest, _, _ = run_dsort_case(n_nodes=4, n_per_node=2000)
    total_bytes = manifest.total_bytes
    io = cluster.total_bytes_io()
    # 2 passes x (read + write) = 4x data volume, plus the sampling reads
    assert io == pytest.approx(4 * total_bytes, rel=0.15)


def test_dsort_cleanup_removes_runs():
    cluster, _, _, config = run_dsort_case()
    for node in cluster.nodes:
        leftovers = [n for n in node.disk.names()
                     if n.startswith(config.run_prefix)]
        assert leftovers == []


def test_dsort_deterministic_timing():
    """Same seed, same cluster, same simulated duration — the virtual-time
    kernel's determinism, end to end."""
    times = []
    for _ in range(2):
        cluster, _, _, _ = run_dsort_case(n_nodes=2, n_per_node=1000)
        times.append(cluster.kernel.now())
    assert times[0] == times[1]


def test_dsort_pass2_thread_budget():
    """Virtual read stages keep pass-2 threads O(1) in the run count."""
    config = DsortConfig(block_records=64, vertical_block_records=32,
                         out_block_records=128, oversample=8)
    # 2000 records/node / 64-record runs -> ~32 runs per node
    cluster, _, reports, _ = run_dsort_case(n_nodes=2, n_per_node=2000,
                                            config=config)
    assert all(r.n_runs >= 16 for r in reports)
    # if each run cost 3 threads, we'd see >100 processes per node in
    # pass 2; the virtual grouping keeps the whole run's process count low
    names = [p.name for p in cluster.kernel.processes]
    pass2_read_threads = [n for n in names if "vgroup[read]" in n]
    assert len(pass2_read_threads) == 2  # one shared read thread per node
