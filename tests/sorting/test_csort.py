"""End-to-end tests for csort (3-pass out-of-core columnsort)."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.errors import ColumnsortShapeError, ProcessFailed
from repro.pdm.records import RecordSchema
from repro.sorting.columnsort import CsortConfig, run_csort
from repro.sorting.verify import verify_striped_output
from repro.workloads.distributions import PAPER_DISTRIBUTIONS
from repro.workloads.generator import generate_input


def fast_hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


def run_csort_case(n_nodes=4, n_per_node=2048, distribution="uniform",
                   schema=None, config=None, seed=0):
    schema = schema or RecordSchema.paper_16()
    config = config or CsortConfig(out_block_records=128)
    cluster = Cluster(n_nodes=n_nodes, hardware=fast_hw())
    manifest = generate_input(cluster, schema, n_per_node, distribution,
                              seed=seed)
    reports = cluster.run(run_csort, schema, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
    return cluster, manifest, reports, config


@pytest.mark.parametrize("distribution", PAPER_DISTRIBUTIONS)
def test_csort_sorts_every_paper_distribution(distribution):
    run_csort_case(distribution=distribution)


def test_csort_64_byte_records():
    run_csort_case(schema=RecordSchema.paper_64(), n_per_node=2048)


def test_csort_single_node():
    run_csort_case(n_nodes=1, n_per_node=4096,
                   config=CsortConfig(out_block_records=64))


def test_csort_two_nodes():
    run_csort_case(n_nodes=2, n_per_node=4096,
                   config=CsortConfig(out_block_records=256))


def test_csort_plan_is_consistent_across_nodes():
    _, _, reports, _ = run_csort_case()
    plans = {(r.plan.r, r.plan.s) for r in reports}
    assert len(plans) == 1
    (r, s) = plans.pop()
    assert r * s == 4 * 2048


def test_csort_three_passes_of_io():
    """csort reads and writes each record exactly three times, the 50%
    I/O-volume disadvantage vs dsort's two passes (paper, Section I)."""
    cluster, manifest, _, _ = run_csort_case(n_nodes=4, n_per_node=2048)
    total_bytes = manifest.total_bytes
    assert cluster.total_bytes_io() == pytest.approx(6 * total_bytes,
                                                     rel=0.01)


def test_csort_balanced_io_across_nodes():
    """Every node reads and writes exactly the average volume
    (paper, Section I: a csort advantage)."""
    cluster, _, _, _ = run_csort_case(n_nodes=4, n_per_node=2048)
    volumes = [node.disk.bytes_total for node in cluster.nodes]
    assert max(volumes) == min(volumes)


def test_csort_report_times():
    _, _, reports, _ = run_csort_case()
    for rep in reports:
        assert rep.pass1_time > 0
        assert rep.pass2_time > 0
        assert rep.pass3_time > 0
        assert rep.total_time == pytest.approx(
            rep.pass1_time + rep.pass2_time + rep.pass3_time)


def test_csort_uneven_input_rejected():
    schema = RecordSchema.paper_16()
    cluster = Cluster(n_nodes=2, hardware=fast_hw())
    generate_input(cluster, schema, 2048, "uniform")
    # make node 1's input longer
    from repro.pdm.blockfile import RecordFile
    rf = RecordFile(cluster.node(1).disk, "input", schema)
    rf.poke(2048, schema.from_keys(np.array([1], dtype=np.uint64)))
    with pytest.raises(ProcessFailed) as exc_info:
        cluster.run(run_csort, schema, CsortConfig())
    assert isinstance(exc_info.value.original, ColumnsortShapeError)


def test_csort_oversized_stripe_block_rejected():
    schema = RecordSchema.paper_16()
    cluster = Cluster(n_nodes=4, hardware=fast_hw())
    generate_input(cluster, schema, 2048, "uniform")
    config = CsortConfig(out_block_records=10**6)
    with pytest.raises(ProcessFailed) as exc_info:
        cluster.run(run_csort, schema, config)
    assert isinstance(exc_info.value.original, ColumnsortShapeError)


def test_csort_s_override():
    config = CsortConfig(out_block_records=128, s_override=8)
    _, _, reports, _ = run_csort_case(n_nodes=4, n_per_node=2048,
                                      config=config)
    assert reports[0].plan.s == 8


def test_csort_cleanup_removes_temps():
    cluster, _, _, config = run_csort_case()
    for node in cluster.nodes:
        assert not node.disk.exists(config.temp1_file)
        assert not node.disk.exists(config.temp2_file)


def test_csort_communication_volume_near_balanced():
    """Nodes put (almost) the same byte volume on the wire; the only
    variation comes from the striping round's partial blocks and from
    loopback shares, both a few percent at this scale."""
    cluster, _, _, _ = run_csort_case(n_nodes=4, n_per_node=2048)
    sent = cluster.network.bytes_sent
    assert max(sent) - min(sent) <= 0.10 * max(sent)
