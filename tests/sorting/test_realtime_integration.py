"""Kernel-agnosticism: the full sorting programs run unmodified on the
real-time kernel (free OS threads, wall-clock time) and stay correct.

This is the library's analogue of the paper's actual deployment: real
threads, genuinely asynchronous stages — with ``time_scale=0`` so modeled
latencies become yields and the tests stay fast.  Timing is not asserted
(wall-clock on free threads is nondeterministic); correctness is.
"""

import pytest

from repro.cluster import Cluster, FileStorage, HardwareModel
from repro.pdm.records import RecordSchema
from repro.sim import RealTimeKernel
from repro.sorting.columnsort import CsortConfig, run_csort
from repro.sorting.dsort import DsortConfig, run_dsort
from repro.sorting.verify import verify_striped_output
from repro.workloads.generator import generate_input

SCHEMA = RecordSchema.paper_16()


def realtime_cluster(n_nodes, tmp_path=None):
    kernel = RealTimeKernel(time_scale=0.0)
    storages = None
    if tmp_path is not None:
        storages = [FileStorage(str(tmp_path / f"node{r}"))
                    for r in range(n_nodes)]
    return Cluster(n_nodes=n_nodes, hardware=HardwareModel(),
                   kernel=kernel, storages=storages)


def run_to_completion(cluster, main, *args, timeout=120.0):
    procs = cluster.spawn_spmd(main, *args)
    cluster.kernel.run(timeout=timeout)
    return [p.result for p in procs]


def test_dsort_on_realtime_kernel():
    cluster = realtime_cluster(4)
    manifest = generate_input(cluster, SCHEMA, 2000, "uniform", seed=4)
    config = DsortConfig(block_records=256, vertical_block_records=64,
                         out_block_records=256, oversample=16)
    run_to_completion(cluster, run_dsort, SCHEMA, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)


def test_csort_on_realtime_kernel():
    cluster = realtime_cluster(2)
    manifest = generate_input(cluster, SCHEMA, 4096, "poisson", seed=4)
    config = CsortConfig(out_block_records=128)
    run_to_completion(cluster, run_csort, SCHEMA, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)


def test_dsort_on_realtime_kernel_with_real_files(tmp_path):
    """The paper's deployment style end to end: real threads AND real
    file I/O under a temporary directory."""
    cluster = realtime_cluster(2, tmp_path=tmp_path)
    manifest = generate_input(cluster, SCHEMA, 1500, "std_normal", seed=4)
    config = DsortConfig(block_records=128, vertical_block_records=64,
                         out_block_records=128, oversample=16)
    run_to_completion(cluster, run_dsort, SCHEMA, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
    # the output genuinely lives on the host filesystem
    assert (tmp_path / "node0" / "output").exists()
    assert (tmp_path / "node1" / "output").exists()
