"""csort under bounded mailboxes.

The pairwise alltoall schedule keeps each round's outstanding traffic to
one message per peer pair, so a few chunks of mailbox capacity absorb the
round skew that FG's pipelining introduces (stages on different nodes may
be one round apart).  The eager schedule would need (P-1) chunks per
round of skew.
"""

import pytest

from repro.cluster import Cluster, HardwareModel
from repro.pdm.records import RecordSchema
from repro.sorting.columnsort import CsortConfig, plan_columnsort, run_csort
from repro.sorting.verify import verify_striped_output
from repro.workloads.generator import generate_input

SCHEMA = RecordSchema.paper_16()


@pytest.mark.parametrize("capacity_chunks", [4, 8])
def test_csort_completes_under_bounded_mailboxes(capacity_chunks):
    n_nodes, n_per_node = 4, 2048
    hw = HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                       disk_bandwidth=1e9, disk_seek=1e-5)
    # r/P records per alltoall chunk; capacity measured in such chunks
    plan = plan_columnsort(n_nodes * n_per_node, n_nodes)
    chunk_bytes = (plan.r // n_nodes) * SCHEMA.record_bytes
    cluster = Cluster(n_nodes=n_nodes, hardware=hw,
                      mailbox_capacity_bytes=capacity_chunks * chunk_bytes)
    manifest = generate_input(cluster, SCHEMA, n_per_node, "uniform",
                              seed=8)
    config = CsortConfig(out_block_records=64)
    cluster.run(run_csort, SCHEMA, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
