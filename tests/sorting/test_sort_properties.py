"""Property-based end-to-end sorting tests: random shapes, random
distributions, tiny scales — both sorters must always produce verified
striped output."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, HardwareModel
from repro.pdm.records import RecordSchema
from repro.sorting.columnsort import CsortConfig, run_csort
from repro.sorting.dsort import DsortConfig, run_dsort
from repro.sorting.verify import verify_striped_output
from repro.workloads.distributions import DISTRIBUTIONS
from repro.workloads.generator import generate_input


def fast_hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=50, max_value=700),
       st.sampled_from(sorted(DISTRIBUTIONS)),
       st.integers(min_value=0, max_value=100))
def test_property_dsort_always_correct(n_nodes, n_per_node, distribution,
                                       seed):
    cluster = Cluster(n_nodes=n_nodes, hardware=fast_hw())
    manifest = generate_input(cluster, RecordSchema.paper_16(),
                              n_per_node, distribution, seed=seed)
    config = DsortConfig(block_records=64, vertical_block_records=32,
                         out_block_records=48, oversample=8, seed=seed)
    cluster.run(run_dsort, RecordSchema.paper_16(), config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from([(1, 2048), (2, 2048), (2, 4096), (4, 2048),
                        (4, 8192)]),
       st.sampled_from(sorted(DISTRIBUTIONS)),
       st.integers(min_value=0, max_value=100))
def test_property_csort_always_correct(shape, distribution, seed):
    n_nodes, n_per_node = shape
    cluster = Cluster(n_nodes=n_nodes, hardware=fast_hw())
    manifest = generate_input(cluster, RecordSchema.paper_16(),
                              n_per_node, distribution, seed=seed)
    config = CsortConfig(out_block_records=32)
    cluster.run(run_csort, RecordSchema.paper_16(), config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
