"""Failure injection: errors anywhere in a sorting run must surface as a
clean ProcessFailed with all threads unwound — never a hang or a silent
partial result."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.cluster.storage import MemoryStorage
from repro.errors import ProcessFailed, StorageError
from repro.pdm.records import RecordSchema
from repro.sorting.columnsort import CsortConfig, run_csort
from repro.sorting.dsort import DsortConfig, run_dsort
from repro.workloads.generator import generate_input

SCHEMA = RecordSchema.paper_16()


def fast_hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


class FailingStorage(MemoryStorage):
    """Storage that fails the Nth write after being armed (a simulated
    media error during the experiment, not during dataset setup)."""

    def __init__(self, fail_at_write: int, armed: bool = False):
        super().__init__()
        self.writes = 0
        self.fail_at_write = fail_at_write
        self.armed = armed

    def write(self, name, offset, data):
        if self.armed:
            self.writes += 1
            if self.writes == self.fail_at_write:
                raise StorageError("injected media error")
        super().write(name, offset, data)


def assert_all_threads_unwound(cluster):
    for proc in cluster.kernel.processes:
        assert not proc.alive, f"leaked process {proc.name}"


@pytest.mark.parametrize("fail_at", [1, 5, 10])
def test_dsort_disk_failure_mid_run(fail_at):
    storages = [MemoryStorage() for _ in range(3)]
    failing = FailingStorage(fail_at_write=fail_at)
    storages[1] = failing
    cluster = Cluster(n_nodes=3, hardware=fast_hw(), storages=storages)
    generate_input(cluster, SCHEMA, 1000, "uniform")
    failing.armed = True
    config = DsortConfig(block_records=128, vertical_block_records=64,
                         out_block_records=128, oversample=8)
    with pytest.raises(ProcessFailed) as exc_info:
        cluster.run(run_dsort, SCHEMA, config)
    assert "injected media error" in repr(exc_info.value.original)
    assert_all_threads_unwound(cluster)


def test_csort_disk_failure_mid_run():
    storages = [MemoryStorage() for _ in range(2)]
    failing = FailingStorage(fail_at_write=3)
    storages[0] = failing
    cluster = Cluster(n_nodes=2, hardware=fast_hw(), storages=storages)
    generate_input(cluster, SCHEMA, 2048, "uniform")
    failing.armed = True
    with pytest.raises(ProcessFailed):
        cluster.run(run_csort, SCHEMA, CsortConfig(out_block_records=64))
    assert_all_threads_unwound(cluster)


def test_dsort_missing_input_file():
    cluster = Cluster(n_nodes=2, hardware=fast_hw())
    generate_input(cluster, SCHEMA, 500, "uniform")
    cluster.node(1).disk.delete("input")
    with pytest.raises(ProcessFailed):
        cluster.run(run_dsort, SCHEMA,
                    DsortConfig(block_records=64,
                                vertical_block_records=32,
                                out_block_records=64, oversample=4))
    assert_all_threads_unwound(cluster)


def test_failure_does_not_corrupt_determinism_of_later_runs():
    """A failed run on one cluster must not affect a fresh cluster."""
    def good_run():
        cluster = Cluster(n_nodes=2, hardware=fast_hw())
        generate_input(cluster, SCHEMA, 500, "uniform", seed=3)
        cluster.run(run_dsort, SCHEMA,
                    DsortConfig(block_records=64,
                                vertical_block_records=32,
                                out_block_records=64, oversample=4))
        return cluster.kernel.now()

    before = good_run()
    storages = [FailingStorage(2, armed=False), MemoryStorage()]
    cluster = Cluster(n_nodes=2, hardware=fast_hw(), storages=storages)
    generate_input(cluster, SCHEMA, 500, "uniform", seed=3)
    storages[0].armed = True
    with pytest.raises(ProcessFailed):
        cluster.run(run_dsort, SCHEMA,
                    DsortConfig(block_records=64,
                                vertical_block_records=32,
                                out_block_records=64, oversample=4))
    after = good_run()
    assert before == after
