"""Tests for the four-pass csort (the un-coalesced Section-III variant)."""

import pytest

from repro.cluster import Cluster, HardwareModel
from repro.pdm.records import RecordSchema
from repro.sorting.columnsort import (
    CsortConfig,
    run_csort,
    run_csort4,
)
from repro.sorting.verify import verify_striped_output
from repro.workloads.distributions import PAPER_DISTRIBUTIONS
from repro.workloads.generator import generate_input

SCHEMA = RecordSchema.paper_16()


def fast_hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


def run_case(n_nodes=4, n_per_node=2048, distribution="uniform", seed=0):
    cluster = Cluster(n_nodes=n_nodes, hardware=fast_hw())
    manifest = generate_input(cluster, SCHEMA, n_per_node, distribution,
                              seed=seed)
    config = CsortConfig(out_block_records=128)
    reports = cluster.run(run_csort4, SCHEMA, config)
    verify_striped_output(cluster, manifest, config.output_file,
                          config.out_block_records)
    return cluster, reports


@pytest.mark.parametrize("distribution", PAPER_DISTRIBUTIONS)
def test_csort4_sorts_every_paper_distribution(distribution):
    run_case(distribution=distribution)


def test_csort4_single_node():
    run_case(n_nodes=1, n_per_node=4096)


def test_csort4_two_nodes():
    run_case(n_nodes=2, n_per_node=4096)


def test_csort4_has_four_positive_pass_times():
    _, reports = run_case()
    for rep in reports:
        assert len(rep.pass_times) == 4
        assert all(t > 0 for t in rep.pass_times)
        assert rep.total_time == pytest.approx(sum(rep.pass_times))


def test_csort4_four_passes_of_io():
    """Four passes = 8x the data volume through the disks."""
    cluster, _ = run_case()
    total_bytes = 4 * 2048 * 16
    assert cluster.total_bytes_io() == pytest.approx(8 * total_bytes,
                                                     rel=0.01)


def test_coalescing_saves_a_pass():
    """Section III's point: the 3-pass version beats the 4-pass version
    because steps 5-8 coalesce into one pass."""
    times = {}
    for name, main in (("three", run_csort), ("four", run_csort4)):
        cluster = Cluster(n_nodes=4,
                          hardware=HardwareModel.scaled_paper_cluster())
        manifest = generate_input(cluster, SCHEMA, 16384, "uniform",
                                  seed=7)
        config = CsortConfig(out_block_records=512)
        cluster.run(main, SCHEMA, config)
        verify_striped_output(cluster, manifest, config.output_file,
                              config.out_block_records)
        times[name] = cluster.kernel.now()
    assert times["three"] < times["four"]
    # the saving is roughly one pass out of four
    assert times["three"] / times["four"] == pytest.approx(0.75, abs=0.12)
