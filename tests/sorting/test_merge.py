"""Unit + property tests for the incremental k-way block merger."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SortError
from repro.pdm.records import RecordSchema
from repro.sorting.merge import BlockMerger

SCHEMA = RecordSchema(8)


def recs(*keys):
    return SCHEMA.from_keys(np.array(keys, dtype=np.uint64))


def drive_merge(runs, block=3, budget=4):
    """Reference driver: feed runs block-by-block, collect all output."""
    blocks = {i: [np.asarray(r[j:j + block], dtype=np.uint64)
                  for j in range(0, len(r), block)]
              for i, r in enumerate(runs)}
    merger = BlockMerger(SCHEMA, list(blocks))
    out_all = []

    def refill():
        for run in sorted(merger.needs(), key=repr):
            if blocks[run]:
                merger.feed(run, recs(*blocks[run].pop(0)))
            else:
                merger.finish_run(run)

    refill()
    scratch = SCHEMA.empty(budget)
    while not merger.exhausted:
        if not merger.ready:
            refill()
            continue
        n = merger.merge_into(scratch, 0, budget)
        out_all.extend(int(k) for k in scratch["key"][:n])
    return out_all


def test_merge_two_runs():
    assert drive_merge([[1, 3, 5, 7], [2, 4, 6, 8]]) == list(range(1, 9))


def test_merge_three_uneven_runs():
    runs = [[10, 20, 30, 40, 50], [5], [15, 25]]
    assert drive_merge(runs) == sorted(sum(runs, []))


def test_merge_with_all_equal_keys():
    runs = [[7, 7, 7], [7, 7], [7, 7, 7, 7]]
    assert drive_merge(runs) == [7] * 9


def test_merge_single_run_streams_through():
    assert drive_merge([[1, 2, 3, 4, 5, 6, 7]]) == list(range(1, 8))


def test_merge_zero_runs_is_immediately_exhausted():
    merger = BlockMerger(SCHEMA, [])
    assert merger.exhausted
    assert merger.ready


def test_empty_run_finished_without_feeding():
    merger = BlockMerger(SCHEMA, ["a", "b"])
    merger.feed("a", recs(1, 2))
    merger.finish_run("b")
    out = SCHEMA.empty(10)
    assert merger.merge_into(out, 0, 10) == 2
    # the drained run must be declared finished before exhaustion shows
    assert merger.needs() == {"a"}
    merger.finish_run("a")
    assert merger.exhausted


def test_merge_stops_when_head_empties():
    merger = BlockMerger(SCHEMA, [0, 1])
    merger.feed(0, recs(1, 2))
    merger.feed(1, recs(10, 20))
    out = SCHEMA.empty(10)
    n = merger.merge_into(out, 0, 10)
    assert n == 2                     # run 0's head emptied
    assert merger.needs() == {0}
    merger.finish_run(0)
    n2 = merger.merge_into(out, n, 10 - n)
    assert list(out["key"][:n + n2]) == [1, 2, 10, 20]


def test_budget_respected():
    merger = BlockMerger(SCHEMA, [0])
    merger.feed(0, recs(*range(100)))
    out = SCHEMA.empty(7)
    assert merger.merge_into(out, 0, 7) == 7
    np.testing.assert_array_equal(out["key"], np.arange(7))


def test_merge_into_offset_start():
    merger = BlockMerger(SCHEMA, [0])
    merger.feed(0, recs(5, 6))
    out = SCHEMA.empty(5)
    n = merger.merge_into(out, 3, 2)
    assert n == 2
    assert list(out["key"][3:5]) == [5, 6]


def test_errors_on_misuse():
    merger = BlockMerger(SCHEMA, [0])
    with pytest.raises(SortError):
        merger.feed(1, recs(1))           # unknown run
    with pytest.raises(SortError):
        merger.feed(0, SCHEMA.empty(0))   # empty block
    merger.feed(0, recs(1))
    with pytest.raises(SortError):
        merger.feed(0, recs(2))           # head not consumed yet
    with pytest.raises(SortError):
        merger.finish_run(0)              # ditto
    merger2 = BlockMerger(SCHEMA, [0, 1])
    merger2.feed(0, recs(1))
    out = SCHEMA.empty(1)
    with pytest.raises(SortError):
        merger2.merge_into(out, 0, 1)     # run 1 still pending


def test_galloping_takes_long_stretches():
    """A dominant run streams out in one merge_into call."""
    merger = BlockMerger(SCHEMA, [0, 1])
    merger.feed(0, recs(*range(1000)))
    merger.feed(1, recs(5000))
    out = SCHEMA.empty(2000)
    n = merger.merge_into(out, 0, 2000)
    assert n == 1000
    assert merger.needs() == {0}


@settings(max_examples=40, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=50),
                         min_size=0, max_size=30),
                min_size=1, max_size=6),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=1, max_value=8))
def test_property_merge_equals_sorted_concatenation(runs, block, budget):
    runs = [sorted(r) for r in runs]
    out = drive_merge(runs, block=block, budget=budget)
    assert out == sorted(sum(runs, []))
