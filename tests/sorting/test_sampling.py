"""Tests for splitter selection and extended-key partitioning.

Includes the paper's Section-VI claim as a property: with oversampling and
extended keys, "all partition sizes were at most 10% greater than the
average" — even for all-equal keys, where plain splitters would send
everything to one node.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, HardwareModel
from repro.pdm.records import RecordSchema
from repro.sorting.dsort.sampling import (
    Splitters,
    partition_ids,
    select_splitters,
)
from repro.workloads.generator import generate_input

SCHEMA = RecordSchema.paper_16()


def fast_cluster(n):
    hw = HardwareModel(net_bandwidth=1e12, net_latency=0.0,
                       disk_bandwidth=1e12, disk_seek=0.0)
    return Cluster(n_nodes=n, hardware=hw)


def select_on_cluster(n_nodes, n_per_node, distribution, oversample=32,
                      seed=0):
    cluster = fast_cluster(n_nodes)
    generate_input(cluster, SCHEMA, n_per_node, distribution, seed=seed)

    def main(node, comm):
        return select_splitters(node, comm, SCHEMA, "input",
                                oversample=oversample, seed=seed)

    return cluster, cluster.run(main)


def test_all_ranks_get_identical_splitters():
    _, results = select_on_cluster(4, 500, "uniform")
    first = results[0]
    for sp in results[1:]:
        np.testing.assert_array_equal(sp.keys, first.keys)
        np.testing.assert_array_equal(sp.nodes, first.nodes)
        np.testing.assert_array_equal(sp.indices, first.indices)


def test_splitter_count_is_p_minus_one():
    for p in (1, 2, 4, 8):
        _, results = select_on_cluster(p, 300, "uniform")
        assert results[0].n_partitions == p
        assert len(results[0].keys) == p - 1


def test_splitters_sorted_by_extended_key():
    _, results = select_on_cluster(4, 500, "poisson")
    sp = results[0]
    ext = list(zip(sp.keys.tolist(), sp.nodes.tolist(),
                   sp.indices.tolist()))
    assert ext == sorted(ext)


def partition_balance(distribution, n_nodes=8, n_per_node=2000,
                      oversample=64, seed=0):
    """Max partition size over average, simulating pass-1 routing."""
    cluster, results = select_on_cluster(n_nodes, n_per_node, distribution,
                                         oversample=oversample, seed=seed)
    splitters = results[0]
    from repro.pdm.blockfile import RecordFile
    counts = np.zeros(n_nodes, dtype=np.int64)
    for rank, node in enumerate(cluster.nodes):
        keys = RecordFile(node.disk, "input", SCHEMA).read_all()["key"]
        pos = np.arange(len(keys), dtype=np.int64)
        part = partition_ids(keys, rank, pos, splitters)
        counts += np.bincount(part, minlength=n_nodes)
    assert counts.sum() == n_nodes * n_per_node
    return counts.max() / counts.mean()


@pytest.mark.parametrize("distribution",
                         ["uniform", "all_equal", "std_normal", "poisson"])
def test_partition_sizes_within_ten_percent_of_average(distribution):
    """The paper's balance claim, on its four distributions."""
    assert partition_balance(distribution) <= 1.10


def test_all_equal_keys_balanced_only_by_extension():
    """With identical keys, extended keys are the only thing standing
    between us and a single hot partition."""
    ratio = partition_balance("all_equal")
    assert ratio <= 1.10


def test_partition_ids_basic_ranges():
    sp = Splitters(keys=np.array([10, 20], dtype=np.uint64),
                   nodes=np.array([0, 0], dtype=np.int64),
                   indices=np.array([0, 1], dtype=np.int64))
    keys = np.array([5, 10, 15, 20, 25], dtype=np.uint64)
    pos = np.array([100, 101, 102, 103, 104], dtype=np.int64)
    part = partition_ids(keys, 1, pos, sp)
    # key 5 < splitter0; key 10 ties splitter0 but (1,101) > (0,0) -> right
    np.testing.assert_array_equal(part, [0, 1, 1, 2, 2])


def test_partition_ids_tie_resolution_by_extension():
    # splitter has key 10, origin (node 1, index 50)
    sp = Splitters(keys=np.array([10], dtype=np.uint64),
                   nodes=np.array([1], dtype=np.int64),
                   indices=np.array([50], dtype=np.int64))
    keys = np.full(3, 10, dtype=np.uint64)
    # record (1, 49) <= splitter -> partition 0; (1, 50) == splitter ->
    # partition 0 (strictly-below count is 0); (1, 51) -> partition 1
    part = partition_ids(keys, 1, np.array([49, 50, 51]), sp)
    np.testing.assert_array_equal(part, [0, 0, 1])
    # records on an earlier node all land left of the splitter
    part0 = partition_ids(keys, 0, np.array([49, 50, 51]), sp)
    np.testing.assert_array_equal(part0, [0, 0, 0])
    # records on a later node all land right
    part2 = partition_ids(keys, 2, np.array([49, 50, 51]), sp)
    np.testing.assert_array_equal(part2, [1, 1, 1])


def test_partition_respects_global_order():
    """Every record in partition i has extended key below every record in
    partition i+1 (checked on keys only, allowing equal keys on the
    boundary)."""
    cluster, results = select_on_cluster(4, 1000, "poisson")
    splitters = results[0]
    from repro.pdm.blockfile import RecordFile
    maxima = [np.uint64(0)] * 4
    minima = [np.uint64(np.iinfo(np.uint64).max)] * 4
    for rank, node in enumerate(cluster.nodes):
        keys = RecordFile(node.disk, "input", SCHEMA).read_all()["key"]
        part = partition_ids(keys, rank,
                             np.arange(len(keys), dtype=np.int64),
                             splitters)
        for p in range(4):
            sel = keys[part == p]
            if len(sel):
                maxima[p] = max(maxima[p], sel.max())
                minima[p] = min(minima[p], sel.min())
    for p in range(3):
        assert maxima[p] <= minima[p + 1]


def test_single_node_no_splitters():
    _, results = select_on_cluster(1, 100, "uniform")
    sp = results[0]
    assert sp.n_partitions == 1
    part = partition_ids(np.array([1, 2], dtype=np.uint64), 0,
                         np.array([0, 1]), sp)
    np.testing.assert_array_equal(part, [0, 0])


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                max_size=200),
       st.integers(min_value=2, max_value=6))
def test_property_partition_ids_monotone_in_extended_key(key_list, n_parts):
    """Records sorted by extended key get non-decreasing partition ids."""
    keys = np.array(sorted(key_list), dtype=np.uint64)
    pos = np.arange(len(keys), dtype=np.int64)  # ties break by position
    # build splitters from a sample of the same records (like sampling does)
    picks = np.linspace(0, len(keys) - 1, n_parts - 1).astype(int)
    sp = Splitters(keys=keys[picks],
                   nodes=np.zeros(n_parts - 1, dtype=np.int64),
                   indices=pos[picks])
    part = partition_ids(keys, 0, pos, sp)
    assert (np.diff(part) >= 0).all()
    assert part.min() >= 0 and part.max() <= n_parts - 1
