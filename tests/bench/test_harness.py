"""Tests for the benchmark harness (small scales so they stay quick)."""

import pytest

from repro.bench.harness import (
    default_csort_config,
    default_dsort_config,
    run_sort,
    stripe_block_records,
)
from repro.cluster import HardwareModel
from repro.errors import ReproError
from repro.pdm.records import RecordSchema

SCHEMA = RecordSchema.paper_16()


def small_hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


@pytest.mark.parametrize("sorter", ["dsort", "csort", "csort4",
                                    "dsort-linear", "nowsort"])
def test_run_sort_every_program(sorter):
    run = run_sort(sorter, "uniform", SCHEMA, n_nodes=2, n_per_node=2048,
                   hardware=small_hw())
    assert run.verified
    assert run.total_time > 0
    assert run.bytes_io > 0
    assert run.total_bytes == 2 * 2048 * 16
    if sorter.startswith("dsort") or sorter == "nowsort":
        assert run.partition_imbalance is not None
    else:
        assert run.partition_imbalance is None


def test_run_sort_phase_names_match_program():
    dsort = run_sort("dsort", "uniform", SCHEMA, n_nodes=2,
                     n_per_node=1024, hardware=small_hw())
    assert list(dsort.phase_times) == ["sampling", "pass1", "pass2"]
    csort4 = run_sort("csort4", "uniform", SCHEMA, n_nodes=2,
                      n_per_node=2048, hardware=small_hw())
    assert list(csort4.phase_times) == ["pass1", "pass2", "pass3", "pass4"]


def test_run_sort_unknown_program_rejected():
    with pytest.raises(ReproError):
        run_sort("bogosort", "uniform", SCHEMA, n_nodes=2,
                 n_per_node=100, hardware=small_hw())


def test_stripe_block_records_satisfies_csort_constraint():
    for n_total, n_nodes in ((2**18, 16), (2**14, 4), (2**12, 2)):
        block = stripe_block_records(n_total, n_nodes)
        assert block >= 1
        # legal for csort: P * block <= r for the planner's shape
        from repro.sorting.columnsort import plan_columnsort
        plan = plan_columnsort(n_total, n_nodes)
        assert block * n_nodes <= plan.r


def test_default_configs_are_consistent():
    dsort_cfg = default_dsort_config(2**16, 4)
    csort_cfg = default_csort_config(2**16, 4)
    # both sorts stripe with the same block so outputs are comparable
    assert dsort_cfg.out_block_records == csort_cfg.out_block_records
    assert dsort_cfg.vertical_block_records <= dsort_cfg.block_records


def test_run_sort_is_deterministic():
    runs = [run_sort("dsort", "poisson", SCHEMA, n_nodes=2,
                     n_per_node=1024, hardware=small_hw(), seed=5)
            for _ in range(2)]
    assert runs[0].phase_times == runs[1].phase_times
    assert runs[0].bytes_io == runs[1].bytes_io
