"""Smoke tests for the experiment functions at miniature scale (the
benchmark suite runs them at full scale; these keep refactors honest)."""

import pytest

from repro.bench.figures import (
    figure8_experiment,
    overlap_experiment,
    pool_size_experiment,
    virtual_stage_experiment,
)


def test_figure8_experiment_tiny():
    results = figure8_experiment(16, n_nodes=2, n_per_node=2048,
                                 distributions=("uniform",))
    pair = results["uniform"]
    assert pair["dsort"].verified and pair["csort"].verified
    assert set(pair["dsort"].phase_times) == {"sampling", "pass1",
                                              "pass2"}
    assert set(pair["csort"].phase_times) == {"pass1", "pass2", "pass3"}


def test_overlap_experiment_structure():
    results = overlap_experiment(n_blocks=8, block_records=1024)
    assert set(results) == {"serial", "pipeline", "speedup"}
    assert results["speedup"] == pytest.approx(
        results["serial"] / results["pipeline"])
    assert results["speedup"] > 1.0


def test_pool_size_experiment_tiny():
    results = pool_size_experiment((1, 3), n_blocks=6, block_records=512)
    assert results[1] > results[3]


def test_virtual_stage_experiment_tiny():
    results = virtual_stage_experiment((2, 5))
    assert results[2] == {"plain": 6, "virtual": 3}
    assert results[5] == {"plain": 15, "virtual": 3}
