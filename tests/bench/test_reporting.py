"""Tests for the table renderer."""

from repro.bench.harness import SortRun
from repro.bench.reporting import render_figure8, render_table


def test_render_table_alignment():
    out = render_table(["name", "value"],
                       [["a", 1.5], ["longer", 0.25]])
    lines = out.splitlines()
    assert len(lines) == 4  # header, rule, 2 rows
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equally wide


def test_render_table_formats_floats():
    out = render_table(["x"], [[0.123456]])
    assert "0.1235" in out


def make_run(sorter, phases):
    return SortRun(sorter=sorter, distribution="uniform", record_bytes=16,
                   n_nodes=2, n_per_node=10, phase_times=phases,
                   verified=True, partition_imbalance=None, bytes_io=0,
                   bytes_wire=0, max_disk_busy=0.0)


def test_render_figure8_structure():
    results = {
        "uniform": {
            "dsort": make_run("dsort", {"sampling": 0.1, "pass1": 1.0,
                                        "pass2": 1.0}),
            "csort": make_run("csort", {"pass1": 1.0, "pass2": 1.0,
                                        "pass3": 1.0}),
        }
    }
    out = render_figure8(results, 16)
    assert "Figure 8 (a)" in out
    assert "dsort" in out and "csort" in out
    assert "0.7000" in out  # ratio 2.1 / 3.0


def test_render_figure8_b_title():
    results = {
        "poisson": {
            "dsort": make_run("dsort", {"sampling": 0.0, "pass1": 1.0,
                                        "pass2": 1.0}),
            "csort": make_run("csort", {"pass1": 1.0, "pass2": 1.0,
                                        "pass3": 1.0}),
        }
    }
    assert "Figure 8 (b)" in render_figure8(results, 64)
