"""Wait-for-graph tests: cycle detection and the runtime deadlock report.

The graph is shared infrastructure: the FG108 lint rule uses it to prove
a bounded-chain deadlock statically, and the virtual-time kernel uses it
to name the cycle when a real deadlock strikes.
"""

import pytest

from repro.core import FGProgram, Stage
from repro.errors import DeadlockError
from repro.sim import VirtualTimeKernel
from repro.sim.waitfor import WaitForGraph


def test_find_cycle_returns_closed_path():
    g = WaitForGraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    cycle = g.find_cycle()
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    assert set(cycle) == {"a", "b", "c"}


def test_acyclic_graph_has_no_cycle():
    g = WaitForGraph()
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("a", "c")
    assert g.find_cycle() is None


def test_self_edges_are_ignored():
    g = WaitForGraph()
    g.add_edge("a", "a")
    assert g.find_cycle() is None


def test_render_cycle_includes_edge_labels():
    g = WaitForGraph()
    g.add_edge("a", "b", "needs data from b")
    g.add_edge("b", "a", "needs space from a")
    rendered = g.render_cycle(g.find_cycle())
    assert "a" in rendered and "b" in rendered
    assert "needs" in rendered


def test_deadlock_report_names_the_wait_cycle():
    """A stage hoarding the only buffer deadlocks the pipeline; the
    DeadlockError must now also render who waits on whom."""
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel, name="dl")

    def greedy(ctx):
        ctx.accept()
        ctx.accept()  # the pool has one buffer; this can never arrive

    prog.add_pipeline("p", [Stage.source_driven("greedy", greedy)],
                      nbuffers=1, buffer_bytes=8, rounds=2)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(DeadlockError) as exc_info:
        kernel.run()
    message = str(exc_info.value)
    assert "wait-for cycle:" in message
    assert "dl.greedy" in message
