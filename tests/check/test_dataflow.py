"""FGPar effect analysis: cells, classifications, conflicts, aliases.

Also the satellite regressions for the shared-walker refactor: FG109's
evidence scan and the planner's resource signatures now both ride
:func:`repro.check.dataflow.iter_code_objects`, and these tests pin that
their verdicts on the pre-refactor fixtures did not move.
"""

import threading

import pytest

from repro.check.dataflow import (
    PURE,
    READ_SHARED,
    WRITE_SHARED,
    Cell,
    cells_conflict,
    classify_fn,
    fn_effects,
    program_effects,
    reachable_names,
    shared_state_evidence,
    unserializable_captures,
)
from repro.core import FGProgram, Stage
from repro.plan.fuse import resource_classes
from repro.plan.ir import ProgramGraph
from repro.sim import VirtualTimeKernel


def fresh_prog(name="effects-prog"):
    return FGProgram(VirtualTimeKernel(), name=name)


# -- classification ---------------------------------------------------------

def test_pure_transform_is_pure():
    def stage(ctx, buf):
        data = buf.view("u1")
        total = int(data.sum())
        return buf if total >= 0 else None

    assert classify_fn(stage) == PURE


def test_shared_read_is_read_shared():
    config = {"threshold": 3}

    def stage(ctx, buf):
        if config["threshold"] > 0:
            return buf
        return None

    assert classify_fn(stage) == READ_SHARED
    eff = fn_effects(stage)
    assert [str(c) for c in eff.reads] == ["config['threshold']"]
    assert not eff.writes


def test_keyed_dict_write_is_write_shared():
    state = {"next_run": 0, "runs": []}

    def stage(ctx, buf):
        state["next_run"] += 1
        state["runs"].append(("run", 1))
        return buf

    eff = fn_effects(stage)
    assert eff.classification == WRITE_SHARED
    labels = sorted(str(c) for c in eff.writes)
    assert labels == ["state['next_run']", "state['runs']"]


def test_attribute_write_is_write_shared():
    class Box:
        total = 0

    box = Box()

    def stage(ctx, buf):
        box.total = box.total + 1
        return buf

    eff = fn_effects(stage)
    assert eff.classification == WRITE_SHARED
    assert [str(c) for c in eff.writes] == ["box.total"]


def test_closure_rebind_and_global_rebind_are_writes():
    count = 0

    def rebinder(ctx, buf):
        nonlocal count
        count += 1
        return buf

    def global_rebinder(ctx, buf):
        global _test_counter  # noqa: PLW0603 - the point of the test
        _test_counter = 1
        return buf

    assert classify_fn(rebinder) == WRITE_SHARED
    assert classify_fn(global_rebinder) == WRITE_SHARED


def test_local_mutation_stays_pure():
    def stage(ctx, buf):
        acc = []
        for i in range(3):
            acc.append(i)
        return buf

    assert classify_fn(stage) == PURE


def test_sibling_closure_is_not_attributed():
    # two stages share a helper closure; the helper's writes belong to
    # whichever stage *calls* it, and the effect scan must not paint
    # both (the recover-harness gate_check trap)
    log = []

    def helper(x):
        log.append(x)

    def quiet(ctx, buf):
        return buf

    # quiet never references helper or log
    assert classify_fn(quiet) == PURE


def test_variable_key_subscript_is_documented_false_negative():
    state = {}

    def stage(ctx, buf):
        key = buf.round
        state[key] = 1  # dynamic key: invisible to the static scan
        return buf

    # the key load clobbers the provenance register, so the store is
    # invisible — the same straight-line-provenance contract FG109
    # documents.  Pinned so a future fix updates the docs too.
    eff = fn_effects(stage)
    assert eff.classification == PURE


# -- cell conflict semantics ------------------------------------------------

def test_cells_conflict_semantics():
    whole = Cell(7, None, "state")
    key_a = Cell(7, "['a']", "state['a']")
    key_b = Cell(7, "['b']", "state['b']")
    other = Cell(8, "['a']", "other['a']")
    assert cells_conflict(key_a, key_a, a_writes=True, b_writes=True)
    assert not cells_conflict(key_a, key_b, a_writes=True, b_writes=True)
    assert cells_conflict(whole, key_a, a_writes=True, b_writes=False)
    # a whole-object *read* is weak evidence against a keyed write
    assert not cells_conflict(key_a, whole, a_writes=True, b_writes=False)
    assert not cells_conflict(key_a, other, a_writes=True, b_writes=True)
    assert not cells_conflict(key_a, key_a, a_writes=False, b_writes=False)


# -- buffer-escape (FG111) tracking -----------------------------------------

def test_appending_the_buffer_is_an_escape():
    stash = []

    def stage(ctx, buf):
        stash.append(buf)
        return buf

    eff = fn_effects(stage, buffer_param="buf")
    assert any("buffer alias" in e for e in eff.buffer_escapes)


def test_appending_a_view_is_an_escape():
    stash = []

    def stage(ctx, buf):
        stash.append(buf.view("u1"))
        return buf

    eff = fn_effects(stage, buffer_param="buf")
    assert any("buffer alias" in e for e in eff.buffer_escapes)


def test_appending_a_derived_scalar_is_not_an_escape():
    # the nested len(...) call must pair with its own CALL, not launder
    # or trip the enclosing append (the unbalanced-exchange fixture)
    stash = []

    def stage(ctx, buf):
        records = buf.view("u1")
        stash.append(len(records))
        return buf

    eff = fn_effects(stage, buffer_param="buf")
    assert eff.buffer_escapes == ()


def test_appending_a_copy_is_not_an_escape():
    stash = []

    def stage(ctx, buf):
        records = buf.view("u1")
        stash.append((1, records.copy()))
        return buf

    eff = fn_effects(stage, buffer_param="buf")
    assert eff.buffer_escapes == ()


def test_tuple_wrapping_the_alias_still_escapes():
    stash = []

    def stage(ctx, buf):
        stash.append((buf, 1))
        return buf

    eff = fn_effects(stage, buffer_param="buf")
    assert any("buffer alias" in e for e in eff.buffer_escapes)


def test_storing_alias_into_shared_subscript_escapes():
    state = {}

    def stage(ctx, buf):
        state["last"] = buf.data
        return buf

    eff = fn_effects(stage, buffer_param="buf")
    assert any("buffer alias" in e for e in eff.buffer_escapes)


# -- fused compositions -----------------------------------------------------

def test_fused_parts_union_their_effects():
    tally = {"n": 0}

    def counts(ctx, buf):
        tally["n"] += 1
        return buf

    def plain(ctx, buf):
        return buf

    def fused(ctx, buf):
        return plain(ctx, counts(ctx, buf))

    fused._fg_effect_parts = (counts, plain)
    eff = fn_effects(fused)
    assert eff.classification == WRITE_SHARED
    assert [str(c) for c in eff.writes] == ["tally['n']"]


# -- whole-program view -----------------------------------------------------

def test_program_effects_finds_cross_pipeline_conflict():
    prog = fresh_prog()
    state = {"count": 0}

    def bump_a(ctx, buf):
        state["count"] += 1
        return buf

    def bump_b(ctx, buf):
        state["count"] += 1
        return buf

    prog.add_pipeline("a", [Stage.map("bump_a", bump_a)],
                      nbuffers=2, buffer_bytes=8, rounds=1)
    prog.add_pipeline("b", [Stage.map("bump_b", bump_b)],
                      nbuffers=2, buffer_bytes=8, rounds=1)
    effects = program_effects(ProgramGraph.from_program(prog))
    pairs = {frozenset((c.stage_a, c.stage_b))
             for c in effects.all_conflicts}
    assert frozenset(("bump_a", "bump_b")) in pairs
    entry = effects.stage("bump_a")
    assert entry is not None and entry.fn_id == id(bump_a)
    assert (frozenset(("bump_a", "bump_b")),) == tuple(
        {p for p, _oid, _k in effects.predicted_pairs()})


def test_program_effects_clean_program_has_no_conflicts():
    prog = fresh_prog()

    def fill(ctx, buf):
        return buf

    prog.add_pipeline("p", [Stage.map("fill", fill)],
                      nbuffers=2, buffer_bytes=8, rounds=1)
    effects = program_effects(ProgramGraph.from_program(prog))
    assert effects.all_conflicts == []
    assert effects.stage("fill").classification == PURE


def test_parallel_safety_lands_in_canonical_and_fingerprint():
    shared = {"n": 0}

    def writer(ctx, buf):
        shared["n"] += 1
        return buf

    def build(fn):
        prog = fresh_prog()
        prog.add_pipeline("p", [Stage.map("s", fn)],
                          nbuffers=2, buffer_bytes=8, rounds=1)
        return ProgramGraph.from_program(prog)

    doc = build(writer).canonical()
    assert doc["pipelines"][0]["stages"][0]["parallel_safety"] \
        == WRITE_SHARED
    assert build(writer).fingerprint() != build(
        lambda ctx, buf: buf).fingerprint()


# -- FG114 captures ---------------------------------------------------------

def test_unserializable_captures_flags_foreign_state():
    lock = threading.Lock()

    def locked(ctx, buf):
        with lock:
            return buf

    gen = (i for i in range(3))

    def generating(ctx, buf):
        next(gen)
        return buf

    assert any("Lock" in c or "lock" in c
               for c in unserializable_captures(locked))
    assert any("generator" in c
               for c in unserializable_captures(generating))


def test_unserializable_captures_exempts_fg_native_objects():
    # control channels are idiomatic FG (fork/join gating); the runtime
    # proxies its own objects across a process boundary
    kernel = VirtualTimeKernel()
    from repro.sim.channel import Channel
    control = Channel(kernel, capacity=1)

    def gated(ctx, buf):
        control.put(1)
        return buf

    assert unserializable_captures(gated) == []


def test_containing_object_is_not_transitively_flagged():
    class Holder:
        def __init__(self):
            self.lock = threading.Lock()

    holder = Holder()

    def stage(ctx, buf):
        with holder.lock:
            return buf

    assert unserializable_captures(stage) == []


# -- shared-walker parity (satellite 1) -------------------------------------

def test_fg109_evidence_phrasing_is_unchanged():
    state = {"acc": []}

    def appender(ctx, buf):
        state["acc"].append(1)
        return buf

    count = 0

    def rebinder(ctx, buf):
        nonlocal count
        count += 1
        return buf

    assert shared_state_evidence(appender) \
        == ["calls .append() on shared 'state'"]
    assert shared_state_evidence(rebinder) \
        == ["rebinds closure variable 'count'"]


def test_fg109_evidence_follows_helper_closures():
    # the evidence walk keeps the full closure-following frontier the
    # old linter-local walker had; the effect scan deliberately does not
    state = {"n": 0}

    def helper():
        state["n"] += 1

    def stage(ctx, buf):
        helper()
        return buf

    assert any("assigns into shared 'state'" in e
               for e in shared_state_evidence(stage))
    assert classify_fn(stage) == PURE  # own-code scope: no attribution


def test_resource_classes_still_follow_closures():
    class Disk:
        def read(self, n):
            return n

    disk = Disk()

    def fetch(n):
        return disk.read(n)

    def stage(ctx, buf):
        return fetch(1) and buf

    assert "disk" in resource_classes(stage)
    assert reachable_names(stage) >= {"read"}


def test_pure_stage_has_empty_resource_signature():
    def stage(ctx, buf):
        return buf

    assert resource_classes(stage) == frozenset()
