"""FGRace: the vector-clock happens-before checker.

Convey edges must order same-pipeline accesses (no false positives);
unordered cross-pipeline writes must be caught; strict mode must
distinguish statically predicted races from coverage gaps.
"""

import pytest

from repro.core import FGProgram, Stage
from repro.errors import ProcessFailed, RaceError
from repro.sim import VirtualTimeKernel

from repro.check.races import race_from_env


def run_to_failure(kernel):
    """Run the kernel; return the RaceError it died on, or None."""
    try:
        kernel.run()
    except ProcessFailed as exc:
        original = exc.original
        while original is not None and not isinstance(original, RaceError):
            original = getattr(original, "original",
                               None) or original.__cause__
        assert isinstance(original, RaceError), exc
        return original
    return None


def test_race_from_env_parsing(monkeypatch):
    for value, expected in [("1", True), ("true", True), ("on", True),
                            (" yes ", True), ("strict", "strict"),
                            ("0", False), ("", False), ("off", False)]:
        monkeypatch.setenv("REPRO_RACE", value)
        assert race_from_env() == expected
    monkeypatch.delenv("REPRO_RACE")
    assert race_from_env() is False


def make_updown(kernel, nbuffers, *, lint_ignore=None):
    prog = FGProgram(kernel, name=f"updown-{nbuffers}", race_detect=True,
                     lint_ignore=lint_ignore)
    state = {"count": 0}

    def up(ctx, buf):
        state["count"] += 1
        return buf

    def down(ctx, buf):
        state["count"] -= 1
        return buf

    prog.add_pipeline("p", [Stage.map("up", up), Stage.map("down", down)],
                      nbuffers=nbuffers, buffer_bytes=16, rounds=5)
    return prog, state


def test_single_buffer_serializes_two_writers():
    # with one buffer in the pool, round k+1 of the head stage can only
    # start after the buffer *recycles* out of the tail stage — the
    # recycle edge joins the tail's clock, so every access is ordered
    kernel = VirtualTimeKernel()
    prog, state = make_updown(kernel, 1, lint_ignore={"FG110"})
    kernel.spawn(prog.run, name="main")
    assert run_to_failure(kernel) is None
    assert state["count"] == 0


def test_pipelined_rounds_of_two_writers_race():
    # with two buffers, `up` round k+1 overlaps `down` round k; both
    # write the same cell with no edge between them — a true race of
    # the pipeline-parallel model, caught dynamically (and statically:
    # FG110 flags the same pair, silenced here so the program runs)
    kernel = VirtualTimeKernel()
    prog, _state = make_updown(kernel, 2, lint_ignore={"FG110"})
    kernel.spawn(prog.run, name="main")
    err = run_to_failure(kernel)
    assert err is not None and err.kind == "shared-state-race"
    assert "'up'" in str(err) and "'down'" in str(err)


def test_unordered_cross_pipeline_writes_are_caught():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel, name="racy", race_detect=True)
    state = {"count": 0}

    def bump_a(ctx, buf):
        state["count"] += 1
        return buf

    def bump_b(ctx, buf):
        state["count"] += 1
        return buf

    prog.add_pipeline("a", [Stage.map("bump_a", bump_a)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    prog.add_pipeline("b", [Stage.map("bump_b", bump_b)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    kernel.spawn(prog.run, name="main")
    err = run_to_failure(kernel)
    assert err is not None and err.kind == "shared-state-race"
    assert "state['count']" in str(err)
    assert "bump_a" in str(err) and "bump_b" in str(err)


def test_strict_mode_accepts_predicted_races():
    # the same defect under strict mode: the static layer predicted the
    # pair, so the failure is the ordinary teardown report, not the
    # coverage-gap error
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel, name="racy-strict", race_detect="strict")
    state = {"count": 0}

    def bump_a(ctx, buf):
        state["count"] += 1
        return buf

    def bump_b(ctx, buf):
        state["count"] += 1
        return buf

    prog.add_pipeline("a", [Stage.map("bump_a", bump_a)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    prog.add_pipeline("b", [Stage.map("bump_b", bump_b)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    kernel.spawn(prog.run, name="main")
    err = run_to_failure(kernel)
    assert err is not None and err.kind == "shared-state-race"
    assert "not statically predicted" not in str(err)


def test_strict_mode_flags_cross_program_coverage_gap():
    # two *programs* share a counter: each program's static analysis is
    # blind to the other, so the dynamic race is unpredicted — strict
    # mode must fail hard with the coverage-gap kind
    kernel = VirtualTimeKernel()
    kernel.enable_race_detection(strict=True)
    state = {"count": 0}

    def make(name):
        prog = FGProgram(kernel, name=name)

        def bump(ctx, buf):
            state["count"] += 1
            return buf

        prog.add_pipeline("p", [Stage.map(f"bump-{name}", bump)],
                          nbuffers=2, buffer_bytes=16, rounds=4)
        return prog

    one, two = make("one"), make("two")

    def driver():
        one.start()
        two.start()
        one.wait()
        two.wait()

    kernel.spawn(driver, name="main")
    err = run_to_failure(kernel)
    assert err is not None and err.kind == "unpredicted-race"


def test_sequential_programs_are_ordered_by_join_and_spawn_edges():
    # the pass-restart pattern: a harness runs a program to completion
    # (or failure), *joins* its processes, then spawns a replacement
    # that touches the same shared state.  The join edge folds the dead
    # processes' clocks into the harness and the fork edge seeds the
    # replacement — so the retry is ordered after the attempt it
    # replaces and even strict mode must stay silent, although the two
    # programs' static analyses are blind to each other
    kernel = VirtualTimeKernel()
    kernel.enable_race_detection(strict=True)
    state = {"count": 0}

    def make(name):
        prog = FGProgram(kernel, name=name)

        def bump(ctx, buf):
            state["count"] += 1
            return buf

        prog.add_pipeline("p", [Stage.map(f"bump-{name}", bump)],
                          nbuffers=2, buffer_bytes=16, rounds=4)
        return prog

    def driver():
        make("first").run()
        make("second").run()

    kernel.spawn(driver, name="main")
    assert run_to_failure(kernel) is None
    assert state["count"] == 8


def test_replicated_stage_sharing_state_races():
    # FG109 exists precisely because replicas race on per-round state;
    # FGRace must observe it dynamically too (lint_ignore silences the
    # static gate so the program actually runs)
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel, name="replica-race", race_detect=True,
                     lint_ignore={"FG109", "FG110"})
    state = {"rounds": 0}

    def work(ctx, buf):
        state["rounds"] += 1
        return buf

    prog.add_pipeline("p", [Stage.map("work", work)],
                      nbuffers=4, buffer_bytes=16, rounds=8,
                      replicas={"work": 2})
    kernel.spawn(prog.run, name="main")
    err = run_to_failure(kernel)
    assert err is not None and err.kind == "shared-state-race"


def test_detector_is_idempotent_and_upgradable():
    kernel = VirtualTimeKernel()
    kernel.enable_race_detection()
    first = kernel.race
    kernel.enable_race_detection(strict=True)
    assert kernel.race is first
    assert kernel.race.strict
