"""FGSan tests: one program per violation kind, plus clean-run negatives.

The cooperative kernel only switches processes at blocking points, so a
stage touching a buffer right after conveying it is deterministic: the
buffer is still in flight when the access happens.
"""

import numpy as np
import pytest

from repro.core import FGProgram, Stage
from repro.errors import PipelineFailed, ProcessFailed, SanitizerError
from repro.obs.metrics import MetricsRegistry
from repro.sim import VirtualTimeKernel


def run_expect_violation(build, kind):
    """Run ``build(kernel)``'s program and return the SanitizerError of
    the expected ``kind`` from the failure chain."""
    kernel = VirtualTimeKernel()
    prog = build(kernel)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed) as exc_info:
        kernel.run()
    failed = exc_info.value.original
    cause = failed
    if isinstance(failed, PipelineFailed):
        cause = failed.failures[0].cause
    assert isinstance(cause, SanitizerError), cause
    assert cause.kind == kind
    return cause


def sanitized_prog(kernel, **kwargs):
    return FGProgram(kernel, name="san", sanitize=True, **kwargs)


def test_use_after_convey_is_caught():
    def build(kernel):
        prog = sanitized_prog(kernel)

        def bad(ctx):
            buf = ctx.accept()
            assert not buf.is_caboose
            ctx.convey(buf)
            buf.view(np.uint8)  # the buffer belongs downstream now

        prog.add_pipeline("p", [Stage.source_driven("bad", bad)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    err = run_expect_violation(build, "use_after_convey")
    assert "conveyed" in str(err)


def test_double_convey_is_caught():
    def build(kernel):
        prog = sanitized_prog(kernel)

        def bad(ctx):
            buf = ctx.accept()
            ctx.convey(buf)
            ctx.convey(buf)

        prog.add_pipeline("p", [Stage.source_driven("bad", bad)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    run_expect_violation(build, "double_convey")


def test_cross_pipeline_convey_is_caught():
    def build(kernel):
        prog = sanitized_prog(kernel)
        other = prog.add_pipeline(
            "other", [Stage.map("o", lambda c, b: b)],
            nbuffers=1, buffer_bytes=8, rounds=1)

        def bad(ctx):
            ctx.accept()
            stolen = ctx.program.buffers_of(other)[0]
            ctx.convey(stolen)  # a buffer of a pipeline this stage is not in

        prog.add_pipeline("mine", [Stage.source_driven("bad", bad)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    err = run_expect_violation(build, "cross_pipeline")
    assert "jump" in str(err)


def test_caboose_write_is_caught():
    def build(kernel):
        prog = sanitized_prog(kernel)

        def bad(ctx):
            buf = ctx.accept()
            while not buf.is_caboose:
                ctx.convey(buf)
                buf = ctx.accept()
            buf.put(np.zeros(1, dtype=np.uint8))  # writing the EOS marker

        prog.add_pipeline("p", [Stage.source_driven("bad", bad)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    run_expect_violation(build, "caboose_write")


def test_leak_of_a_held_buffer_is_caught_at_teardown():
    def build(kernel):
        prog = sanitized_prog(kernel)
        stash = []

        def hoarder(ctx):
            while True:
                buf = ctx.accept()
                if buf.is_caboose:
                    ctx.forward(buf)
                    return
                if not stash:
                    stash.append(buf)  # kept forever, never conveyed
                else:
                    ctx.convey(buf)

        prog.add_pipeline("p", [Stage.source_driven("hoard", hoarder)],
                          nbuffers=2, buffer_bytes=8, rounds=3)
        return prog

    err = run_expect_violation(build, "leak")
    assert "held by 'hoard'" in str(err)


def test_stale_round_reemission_is_caught():
    # unit-level: the only runtime path to on_emit clears first, so feed
    # it a buffer whose round survived (what Buffer.clear() now prevents)
    kernel = VirtualTimeKernel()
    prog = sanitized_prog(kernel)
    p = prog.add_pipeline("p", [Stage.map("m", lambda c, b: b)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
    prog._assemble()
    buf = prog.buffers_of(p)[0]
    buf.round = 7  # as if clear() had not reset it
    with pytest.raises(SanitizerError) as exc_info:
        prog.sanitizer.on_emit(p, buf)
    assert exc_info.value.kind == "stale_round"


def test_violations_are_counted_in_metrics():
    kernel = VirtualTimeKernel()
    registry = kernel.enable_metrics()

    def build(k):
        prog = sanitized_prog(k)

        def bad(ctx):
            buf = ctx.accept()
            ctx.convey(buf)
            ctx.convey(buf)

        prog.add_pipeline("p", [Stage.source_driven("bad", bad)],
                          nbuffers=1, buffer_bytes=8, rounds=1)
        return prog

    prog = build(kernel)
    kernel.spawn(prog.run, name="driver")
    with pytest.raises(ProcessFailed):
        kernel.run()
    assert registry.counter("sanitizer.double_convey").value == 1


# -- negatives: the discipline-respecting programs run clean -----------------

def test_clean_pipeline_has_no_findings():
    kernel = VirtualTimeKernel()
    prog = sanitized_prog(kernel)
    seen = []

    def fill(ctx, buf):
        buf.put(np.full(4, buf.round % 251, dtype=np.uint8))
        return buf

    def check(ctx, buf):
        seen.append(int(buf.view(np.uint8)[0]))
        return buf

    prog.add_pipeline("p", [Stage.map("fill", fill),
                            Stage.map("check", check)],
                      nbuffers=3, buffer_bytes=16, rounds=20)
    kernel.spawn(prog.run, name="driver")
    kernel.run()  # no SanitizerError, teardown check included
    assert seen == [i % 251 for i in range(20)]


def test_map_stage_dropping_a_buffer_is_not_a_leak():
    kernel = VirtualTimeKernel()
    prog = sanitized_prog(kernel)
    survivors = []

    def maybe_drop(ctx, buf):
        if buf.round == 0:
            return None  # legitimate pool shrink
        return buf

    def note(ctx, buf):
        survivors.append(buf.round)
        return buf

    prog.add_pipeline("p", [Stage.map("drop", maybe_drop),
                            Stage.map("note", note)],
                      nbuffers=2, buffer_bytes=8, rounds=4)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert survivors == [1, 2, 3]


def test_dsort_suite_is_sanitize_clean(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    from tests.sorting.test_dsort import run_dsort_case
    run_dsort_case(n_nodes=2, n_per_node=1000)


def test_csort_suite_is_sanitize_clean(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    from tests.sorting.test_csort import run_csort_case
    run_csort_case(n_nodes=2, n_per_node=1024)
