"""A seeded shared-counter race (CLI test fixture; CI proves both
layers flag it).

Two pipelines bump one closure-shared counter dict from their own
processes with no convey edge between them.  The static layer must flag
the pair (FG110: both stages write ``state['count']``), and a
race-detected run must observe the unordered accesses (FGRace raises
:class:`~repro.errors.RaceError` at teardown).  The inverted CI gate
runs ``repro lint --strict`` on this file and fails the build if the
warning *disappears*.
"""

from repro.core import FGProgram, Stage
from repro.sim import VirtualTimeKernel


def build(kernel, race_detect=None):
    prog = FGProgram(kernel, name="race-defect-fixture",
                     race_detect=race_detect)
    state = {"count": 0}

    def bump_a(ctx, buf):
        state["count"] += 1
        return buf

    def bump_b(ctx, buf):
        state["count"] += 1
        return buf

    prog.add_pipeline("a", [Stage.map("bump_a", bump_a)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    prog.add_pipeline("b", [Stage.map("bump_b", bump_b)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    return prog


def main():
    kernel = VirtualTimeKernel()
    prog = build(kernel)
    kernel.spawn(prog.run, name="main")
    kernel.run()


if __name__ == "__main__":
    main()
