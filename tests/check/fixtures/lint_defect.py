"""A seeded lint defect (CLI test fixture; CI proves lint flags it).

The pipeline claims ``rounds=None`` (a stage will declare end-of-stream)
but every stage is a plain map — nothing can ever call
``convey_caboose``, so without the linter this program deadlocks at
runtime.  The FG104 gate aborts it before any process spawns.
"""

from repro.core import FGProgram, Stage
from repro.sim import VirtualTimeKernel


def main():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel, name="defect-fixture")
    prog.add_pipeline("p", [Stage.map("work", lambda ctx, buf: buf)],
                      nbuffers=2, buffer_bytes=64, rounds=None)
    kernel.spawn(prog.run, name="main")
    kernel.run()


if __name__ == "__main__":
    main()
