"""A minimal lint-clean FG program (CLI test fixture)."""

import sys

import numpy as np

from repro.core import FGProgram, Stage
from repro.sim import VirtualTimeKernel


def main():
    # `repro lint` must not leak its own CLI arguments into the programs
    # it executes
    assert "lint" not in sys.argv, f"CLI argv leaked: {sys.argv}"

    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel, name="clean-fixture")

    def fill(ctx, buf):
        buf.put(np.full(8, buf.round, dtype=np.uint8))
        return buf

    def check(ctx, buf):
        assert int(buf.view(np.uint8)[0]) == buf.round
        return buf

    prog.add_pipeline("p", [Stage.map("fill", fill),
                            Stage.map("check", check)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    kernel.spawn(prog.run, name="main")
    kernel.run()


if __name__ == "__main__":
    main()
