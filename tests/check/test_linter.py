"""Static-linter tests: one failing fixture per rule, plus clean twins.

Every fixture builds a small FGProgram and lints it without running;
rules operate on declared structure only.
"""

import pytest

from repro.check import RULES, Severity, lint_program
from repro.core import FGProgram, Stage
from repro.errors import LintError
from repro.sim import VirtualTimeKernel


def fresh_prog(**kwargs):
    return FGProgram(VirtualTimeKernel(), name="lintee", **kwargs)


def findings_for(prog, rule_id):
    return [f for f in lint_program(prog) if f.rule_id == rule_id]


def ok_map(ctx, buf):
    return buf


def eos_full(ctx):
    while True:
        buf = ctx.accept()
        if buf.is_caboose:
            ctx.forward(buf)
            return
        ctx.convey(buf)


def declares(ctx):
    ctx.convey_caboose(ctx.pipelines[0])


def test_rule_catalog_is_complete():
    assert sorted(RULES) == [
        "FG101", "FG102", "FG103", "FG104", "FG105", "FG106", "FG107",
        "FG108", "FG109", "FG110", "FG111", "FG112", "FG113", "FG114",
    ]
    for rule_id, rule in RULES.items():
        assert rule.rule_id == rule_id
        assert rule.severity in (Severity.WARNING, Severity.ERROR)


# -- FG101 pool smaller than depth ------------------------------------------

def test_fg101_flags_pool_smaller_than_depth():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map(f"s{i}", ok_map) for i in range(3)],
                      nbuffers=2, buffer_bytes=8, rounds=1)
    (f,) = findings_for(prog, "FG101")
    assert f.severity is Severity.WARNING
    assert not f.is_error
    assert f.pipeline == "p"


def test_fg101_clean_when_pool_matches_depth():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map(f"s{i}", ok_map) for i in range(3)],
                      nbuffers=3, buffer_bytes=8, rounds=1)
    assert not findings_for(prog, "FG101")


def test_fg101_counts_replica_expanded_depth():
    """Regression: a stage declared with N replicas runs as N copies plus
    a sequencer — 3 declared stages with ``replicas={"b": 3}`` are 6
    concurrent buffer holders, not 3.  The pre-IR check compared the pool
    against ``len(stages)`` and stayed silent here."""
    def build(nbuffers):
        prog = fresh_prog()
        prog.add_pipeline("p", [Stage.map("a", ok_map),
                                Stage.map("b", ok_map),
                                Stage.map("c", ok_map)],
                          nbuffers=nbuffers, buffer_bytes=8, rounds=4,
                          replicas={"b": 3})
        return prog

    (f,) = findings_for(build(nbuffers=4), "FG101")
    assert f.severity is Severity.WARNING
    assert f.pipeline == "p"
    assert "replica" in f.message
    # a pool covering the expanded depth (3 stages -> 2 + 3 copies
    # + sequencer = 6 holders) is clean
    assert not findings_for(build(nbuffers=6), "FG101")


# -- FG102 stage-order cycle -------------------------------------------------

def test_fg102_flags_inconsistent_shared_stage_order():
    prog = fresh_prog()
    a = Stage.source_driven("a", eos_full)
    b = Stage.source_driven("b", eos_full)
    prog.add_pipeline("p", [a, b], nbuffers=2, buffer_bytes=8, rounds=1)
    prog.add_pipeline("q", [b, a], nbuffers=2, buffer_bytes=8, rounds=1)
    (f,) = findings_for(prog, "FG102")
    assert f.is_error
    assert "cycle" in f.message


def test_fg102_clean_on_consistent_intersection():
    prog = fresh_prog()
    a = Stage.source_driven("a", eos_full)
    b = Stage.source_driven("b", eos_full)
    prog.add_pipeline("p", [a, b], nbuffers=2, buffer_bytes=8, rounds=1)
    prog.add_pipeline("q", [a, b], nbuffers=2, buffer_bytes=8, rounds=1)
    assert not findings_for(prog, "FG102")


# -- FG103 stage contract ----------------------------------------------------

def test_fg103_flags_unbound_stage_function():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.source_driven("later", None)],
                      nbuffers=1, buffer_bytes=8, rounds=1)
    (f,) = findings_for(prog, "FG103")
    assert "no function bound" in f.message


def test_fg103_flags_wrong_arity_for_style():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", lambda ctx: None)],
                      nbuffers=1, buffer_bytes=8, rounds=1)
    (f,) = findings_for(prog, "FG103")
    assert "fn(ctx, buffer)" in f.message
    assert f.stage == "m"


def test_fg103_clean_on_conforming_stages():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map),
                            Stage.source_driven("f", eos_full)],
                      nbuffers=2, buffer_bytes=8, rounds=1)
    assert not findings_for(prog, "FG103")


# -- FG104 no EOS declarer ---------------------------------------------------

def test_fg104_flags_unterminable_rounds_none_pipeline():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=None)
    (f,) = findings_for(prog, "FG104")
    assert f.is_error
    assert "convey_caboose" in f.message


def test_fg104_clean_when_a_stage_declares_eos():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.source_driven("d", declares),
                            Stage.map("m", ok_map)],
                      nbuffers=2, buffer_bytes=8, rounds=None)
    assert not findings_for(prog, "FG104")


def test_fg104_gives_full_control_stages_benefit_of_doubt():
    # a full-control loop may declare EOS through state the bytecode scan
    # cannot see; the linter must not claim certainty
    def opaque(ctx):
        ctx.accept()

    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.source_driven("opaque", opaque)],
                      nbuffers=1, buffer_bytes=8, rounds=None)
    assert not findings_for(prog, "FG104")


def test_fg104_sees_declaration_through_helper_functions():
    # the declaration lives in a sibling closure, like fork/join's loops
    def helper(ctx):
        ctx.convey_caboose(ctx.pipelines[0])

    def stage_fn(ctx):
        helper(ctx)

    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map),
                            Stage.source_driven("d", stage_fn)],
                      nbuffers=2, buffer_bytes=8, rounds=None)
    assert not findings_for(prog, "FG104")


# -- FG105 declarer not first ------------------------------------------------

def test_fg105_flags_stages_blind_to_the_caboose():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("blind", ok_map),
                            Stage.source_driven("d", declares)],
                      nbuffers=2, buffer_bytes=8, rounds=None)
    (f,) = findings_for(prog, "FG105")
    assert "blind" in f.message
    assert f.stage == "d"


def test_fg105_clean_when_declarer_is_first():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.source_driven("d", declares),
                            Stage.map("m", ok_map)],
                      nbuffers=2, buffer_bytes=8, rounds=None)
    assert not findings_for(prog, "FG105")


# -- FG106 zero rounds -------------------------------------------------------

def test_fg106_flags_zero_round_pipeline():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=0)
    (f,) = findings_for(prog, "FG106")
    assert f.severity is Severity.WARNING


def test_fg106_clean_on_positive_rounds():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=1)
    assert not findings_for(prog, "FG106")


# -- FG107 dangling failure hook --------------------------------------------

def test_fg107_flags_noncallable_hook():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=1)
    prog.on_pipeline_failure = "not a hook"
    (f,) = findings_for(prog, "FG107")
    assert "not a callable" in f.message


def test_fg107_flags_wrong_arity_hook():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=1)
    prog.on_pipeline_failure = lambda exc: None
    (f,) = findings_for(prog, "FG107")
    assert "hook(stage, pipelines, exc)" in f.message


def test_fg107_clean_on_conforming_hook():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=1)
    prog.on_pipeline_failure = lambda stage, pipelines, exc: None
    assert not findings_for(prog, "FG107")


# -- FG108 bounded chain deadlock -------------------------------------------

def shared_pair():
    return (Stage.source_driven("s", eos_full),
            Stage.source_driven("t", eos_full))


def test_fg108_flags_chain_that_cannot_park_the_pool():
    prog = fresh_prog()
    s, t = shared_pair()
    prog.add_pipeline("p", [s, t], nbuffers=2, buffer_bytes=8,
                      rounds=1, channel_capacity=0)
    prog.add_pipeline("q", [s, t], nbuffers=2, buffer_bytes=8, rounds=1)
    (f,) = findings_for(prog, "FG108")
    assert f.is_error
    assert "wait-for" in f.message


def test_fg108_clean_when_the_chain_can_absorb_the_pool():
    prog = fresh_prog()
    s, t = shared_pair()
    prog.add_pipeline("p", [s, t], nbuffers=2, buffer_bytes=8,
                      rounds=1, channel_capacity=2)
    prog.add_pipeline("q", [s, t], nbuffers=2, buffer_bytes=8, rounds=1)
    assert not findings_for(prog, "FG108")


def test_fg108_ignores_unbounded_channels():
    prog = fresh_prog()
    s, t = shared_pair()
    prog.add_pipeline("p", [s, t], nbuffers=4, buffer_bytes=8, rounds=1)
    prog.add_pipeline("q", [s, t], nbuffers=4, buffer_bytes=8, rounds=1)
    assert not findings_for(prog, "FG108")


def test_fg108_rendezvous_edges_park_nothing():
    """Regression: a capacity-0 rendezvous edge parks *zero* buffers (the
    producer blocks still holding its own), so a 3-stage chain at
    capacity 0 absorbs exactly the one buffer the middle stage holds.
    The pre-IR formula (``hops * cap + (hops - 1)``) got plain chains
    right; this pins the edge-wise model's cap-0 arithmetic."""
    def build(nbuffers):
        prog = fresh_prog()
        s, t = shared_pair()
        prog.add_pipeline("p", [s, Stage.map("m", ok_map), t],
                          nbuffers=nbuffers, buffer_bytes=8, rounds=1,
                          channel_capacity=0)
        prog.add_pipeline("q", [s, t], nbuffers=2, buffer_bytes=8,
                          rounds=1)
        return prog

    (f,) = findings_for(build(nbuffers=2), "FG108")
    assert f.is_error
    assert "wait-for" in f.message
    assert not findings_for(build(nbuffers=1), "FG108")


def test_fg108_reorder_channel_absorbs_the_pool():
    """Regression: the unbounded reorder channel behind a replicated
    stage can absorb the whole pool, so a bounded chain through a
    replicated intermediate cannot deadlock on parking space.  The
    pre-IR analysis priced every edge at ``channel_capacity`` and
    flagged this program (pool 4 > hops*cap + intermediates = 3)."""
    prog = fresh_prog()
    s, t = shared_pair()
    prog.add_pipeline("p", [s, Stage.map("work", ok_map), t],
                      nbuffers=4, buffer_bytes=8, rounds=4,
                      channel_capacity=1, replicas={"work": 2})
    prog.add_pipeline("q", [s, t], nbuffers=4, buffer_bytes=8, rounds=4)
    assert not findings_for(prog, "FG108")


# -- suppression and the start() gate ---------------------------------------

def test_lint_ignore_parameter_suppresses_rule():
    prog = fresh_prog(lint_ignore={"FG104"})
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=None)
    assert prog.lint() == []


def test_env_ignore_suppresses_rule(monkeypatch):
    monkeypatch.setenv("REPRO_LINT_IGNORE", "fg104, fg105")
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=None)
    assert prog.lint() == []


def test_start_raises_lint_error_before_spawning_anything():
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=None)
    with pytest.raises(LintError) as exc_info:
        prog.start()
    assert "FG104" in str(exc_info.value)
    assert prog.lint_findings  # report is kept for inspection


def test_warnings_do_not_block_start():
    kernel = VirtualTimeKernel()
    prog = FGProgram(kernel)
    prog.add_pipeline("p", [Stage.map(f"s{i}", ok_map) for i in range(3)],
                      nbuffers=2, buffer_bytes=8, rounds=2)  # FG101 warning
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    assert any(f.rule_id == "FG101" for f in prog.lint_findings)


def test_lint_false_disables_the_gate():
    prog = fresh_prog(lint=False)
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=None)
    prog.start()  # no LintError; the broken pipeline is the user's problem
    assert prog.lint_findings == []


def test_env_kill_switch_disables_the_gate(monkeypatch):
    monkeypatch.setenv("REPRO_LINT", "0")
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=None)
    prog.start()
    assert prog.lint_findings == []


# -- FG109 replicated stage with per-round mutable state --------------------

def replicated_prog(fn, *, replicas=2, extra_stage=True):
    prog = fresh_prog()
    stages = [Stage.map("work", fn)]
    if extra_stage:
        stages.append(Stage.map("sink", ok_map))
    prog.add_pipeline("p", stages, nbuffers=4, buffer_bytes=8, rounds=4,
                      replicas={"work": replicas})
    return prog


def test_fg109_flags_closure_dict_mutation():
    state = {"next_run": 0, "runs": []}

    def work(ctx, buf):
        state["next_run"] += 1
        state["runs"].append(buf.round)
        return buf

    findings = findings_for(replicated_prog(work), "FG109")
    assert len(findings) == 1
    (f,) = findings
    assert f.severity is Severity.ERROR
    assert f.stage == "work"
    assert "state" in f.message


def test_fg109_flags_closure_rebinding():
    count = 0

    def work(ctx, buf):
        nonlocal count
        count += 1
        return buf

    findings = findings_for(replicated_prog(work), "FG109")
    assert len(findings) == 1
    assert "count" in findings[0].message


def test_fg109_flags_global_mutation():
    import tests.check.fixtures  # noqa: F401 - only to have a module ns

    def work(ctx, buf):
        _FG109_GLOBAL_STATE.append(buf.round)
        return buf

    findings = findings_for(replicated_prog(work), "FG109")
    assert len(findings) == 1


_FG109_GLOBAL_STATE: list = []


def test_fg109_flags_attribute_write_on_shared_object():
    class Holder:
        total = 0

    holder = Holder()

    def work(ctx, buf):
        holder.total = holder.total + 1
        return buf

    findings = findings_for(replicated_prog(work), "FG109")
    assert len(findings) == 1
    assert ".total" in findings[0].message


def test_fg109_flags_manual_convey():
    def work(ctx, buf):
        ctx.convey(buf)
        return None

    findings = findings_for(replicated_prog(work), "FG109")
    assert len(findings) == 1
    assert "convey" in findings[0].message


def test_fg109_clean_stateless_stage():
    """The dsort/csort idiom: read via closure, mutate only the buffer."""
    class Schema:
        dtype = None

        def sort(self, records):
            return records

    schema = Schema()

    def work(ctx, buf):
        buf.tags["column"] = buf.round
        buf.tags.setdefault("seen", []).append(1)
        schema.sort(buf)
        return buf

    assert findings_for(replicated_prog(work), "FG109") == []


def test_fg109_ignores_unreplicated_stateful_stage():
    state = {"n": 0}

    def work(ctx, buf):
        state["n"] += 1
        return buf

    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("work", work)],
                      nbuffers=2, buffer_bytes=8, rounds=2)
    assert findings_for(prog, "FG109") == []


def test_fg109_real_sorter_sort_stages_are_clean():
    """Replicating the actual dsort/csort sort stages must lint clean —
    they are the replication targets repro.tune searches over."""
    from repro.bench.harness import run_sort
    from repro.pdm.records import RecordSchema

    run = run_sort("dsort", "uniform", RecordSchema.paper_16(),
                   n_nodes=2, n_per_node=512, seed=0,
                   tune={"sort_replicas": 2})
    assert run.verified


# -- FG110..FG114: the effect-analysis rules --------------------------------

def shared_counter_prog(**kwargs):
    prog = fresh_prog(**kwargs)
    state = {"count": 0}

    def bump_a(ctx, buf):
        state["count"] += 1
        return buf

    def bump_b(ctx, buf):
        state["count"] += 1
        return buf

    prog.add_pipeline("a", [Stage.map("bump_a", bump_a)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    prog.add_pipeline("b", [Stage.map("bump_b", bump_b)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    return prog


def test_fg110_flags_cross_pipeline_shared_write():
    found = findings_for(shared_counter_prog(), "FG110")
    assert found and found[0].severity == Severity.WARNING
    assert "state['count']" in found[0].message
    assert "bump_a" in found[0].message and "bump_b" in found[0].message


def test_fg110_respects_lint_ignore():
    prog = shared_counter_prog(lint_ignore={"FG110"})
    assert not any(f.rule_id == "FG110" for f in prog.lint())


def test_fg110_clean_on_disjoint_state():
    prog = fresh_prog()
    mine = {"count": 0}
    yours = {"count": 0}

    def bump_a(ctx, buf):
        mine["count"] += 1
        return buf

    def bump_b(ctx, buf):
        yours["count"] += 1
        return buf

    prog.add_pipeline("a", [Stage.map("bump_a", bump_a)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    prog.add_pipeline("b", [Stage.map("bump_b", bump_b)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    assert findings_for(prog, "FG110") == []


def test_fg111_flags_escaping_buffer_alias():
    stash = []

    def keeper(ctx, buf):
        stash.append(buf)
        return buf

    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("keeper", keeper)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    found = findings_for(prog, "FG111")
    assert found and found[0].severity == Severity.WARNING
    assert "alias" in found[0].message


def test_fg111_clean_when_the_stage_copies():
    stash = []

    def copier(ctx, buf):
        records = buf.view("u1")
        stash.append(len(records))
        return buf

    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("copier", copier)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    assert findings_for(prog, "FG111") == []


def test_fg112_fused_stage_with_two_writers_is_an_error():
    a_state = {"n": 0}
    b_state = {"n": 0}

    def wa(ctx, buf):
        a_state["n"] += 1
        return buf

    def wb(ctx, buf):
        b_state["n"] += 1
        return buf

    def fused(ctx, buf):
        return wb(ctx, wa(ctx, buf))

    fused._fg_effect_parts = (wa, wb)
    s = Stage.map("wa+wb", fused)
    s.fused_from = ("wa", "wb")
    prog = fresh_prog()
    prog.add_pipeline("p", [s], nbuffers=2, buffer_bytes=16, rounds=4)
    found = findings_for(prog, "FG112")
    assert found and found[0].severity == Severity.ERROR
    assert "2 write-carrying" in found[0].message


def test_fg112_single_writer_composition_is_fine():
    a_state = {"n": 0}

    def wa(ctx, buf):
        a_state["n"] += 1
        return buf

    def pure(ctx, buf):
        return buf

    def fused(ctx, buf):
        return pure(ctx, wa(ctx, buf))

    fused._fg_effect_parts = (wa, pure)
    s = Stage.map("wa+pure", fused)
    s.fused_from = ("wa", "pure")
    prog = fresh_prog()
    prog.add_pipeline("p", [s], nbuffers=2, buffer_bytes=16, rounds=4)
    assert findings_for(prog, "FG112") == []


def test_fg113_flags_eos_declarer_touching_peer_state():
    prog = fresh_prog()
    state = {"done": 0}

    def recv(ctx):
        state["done"] += 1
        ctx.convey_caboose(ctx.pipelines[0])

    def consume(ctx, buf):
        if state["done"]:
            return buf
        return buf

    prog.add_pipeline("p", [Stage.source_driven("recv", recv),
                            Stage.map("consume", consume)],
                      nbuffers=2, buffer_bytes=16, rounds=None)
    found = findings_for(prog, "FG113")
    assert found and found[0].stage == "recv"
    assert "consume" in found[0].message


def test_fg113_clean_when_the_declarer_keeps_state_private():
    prog = fresh_prog()
    state = {"done": 0}

    def recv(ctx):
        state["done"] += 1
        ctx.convey_caboose(ctx.pipelines[0])

    prog.add_pipeline("p", [Stage.source_driven("recv", recv),
                            Stage.map("consume", ok_map)],
                      nbuffers=2, buffer_bytes=16, rounds=None)
    assert findings_for(prog, "FG113") == []


def test_fg114_flags_captured_lock():
    import threading
    lock = threading.Lock()

    def locked(ctx, buf):
        with lock:
            return buf

    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("locked", locked)],
                      nbuffers=2, buffer_bytes=16, rounds=4)
    found = findings_for(prog, "FG114")
    assert found and "cannot cross a process boundary" in found[0].message


# -- suppression-list hygiene ------------------------------------------------

def test_normalize_rule_ids_strips_and_uppercases():
    from repro.check.linter import normalize_rule_ids
    assert normalize_rule_ids([" fg104 ", "FG105", ""]) \
        == {"FG104", "FG105"}


def test_normalize_rule_ids_warns_on_unknown_id():
    from repro.check.linter import normalize_rule_ids
    with pytest.warns(UserWarning, match="unknown lint rule id 'FG999'"):
        assert normalize_rule_ids(["fg999"]) == {"FG999"}


def test_lint_ignore_parameter_warns_on_unknown_id():
    with pytest.warns(UserWarning, match="FGProgram\\(lint_ignore=.*FG999"):
        fresh_prog(lint_ignore={"FG999"})


def test_env_ignore_warns_on_unknown_id(monkeypatch):
    monkeypatch.setenv("REPRO_LINT_IGNORE", "fg104, nope")
    prog = fresh_prog()
    prog.add_pipeline("p", [Stage.map("m", ok_map)],
                      nbuffers=1, buffer_bytes=8, rounds=None)
    with pytest.warns(UserWarning, match="REPRO_LINT_IGNORE.*'NOPE'"):
        assert prog.lint() == []
