"""`repro lint` tests: exit codes, JSON output, argv isolation."""

import json
import os
import subprocess
import sys

from repro.check.runner import lint_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CLEAN = os.path.join(FIXTURES, "clean_program.py")
DEFECT = os.path.join(FIXTURES, "lint_defect.py")


def run_lint(paths, **kwargs):
    lines = []
    code = lint_paths(paths, out=lines.append, **kwargs)
    return code, "\n".join(lines)


def test_clean_program_exits_zero():
    code, output = run_lint([CLEAN])
    assert code == 0
    assert f"{CLEAN}: clean" in output


def test_defect_fixture_exits_nonzero():
    code, output = run_lint([DEFECT])
    assert code == 1
    assert "FG104" in output


def test_mixed_batch_reports_every_file():
    code, output = run_lint([CLEAN, DEFECT])
    assert code == 1
    assert f"{CLEAN}: clean" in output
    assert "1 error(s)" in output


def test_json_output_is_machine_readable():
    code, output = run_lint([DEFECT], as_json=True)
    assert code == 1
    payload = json.loads(output)
    findings = payload["files"][DEFECT]
    assert findings[0]["rule"] == "FG104"
    assert payload["errors"] == 1
    assert payload["crashes"] == {}


def test_crashing_file_exits_two(tmp_path):
    crasher = tmp_path / "crasher.py"
    crasher.write_text("raise RuntimeError('boom')\n")
    code, output = run_lint([str(crasher)])
    assert code == 2
    assert "boom" in output


def test_cli_entry_point_end_to_end():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        ["src"] + env.get("PYTHONPATH", "").split(os.pathsep))
    clean = subprocess.run(
        [sys.executable, "-m", "repro", "lint", CLEAN],
        capture_output=True, text=True, env=env)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    defect = subprocess.run(
        [sys.executable, "-m", "repro", "lint", DEFECT],
        capture_output=True, text=True, env=env)
    assert defect.returncode == 1, defect.stdout + defect.stderr
    assert "FG104" in defect.stdout


RACE_DEFECT = os.path.join(FIXTURES, "race_defect.py")


def test_race_defect_fixture_warns_fg110():
    code, output = run_lint([RACE_DEFECT])
    assert code == 0  # FG110 is a warning; only --strict blocks
    assert "FG110" in output


def test_race_defect_fixture_fails_strict():
    code, output = run_lint([RACE_DEFECT], strict=True)
    assert code == 1
    assert "FG110" in output


def test_list_rules_prints_the_full_catalog():
    from repro.check.runner import rules_table
    lines = rules_table()
    ids = [line.split()[0] for line in lines]
    assert ids == [f"FG{n}" for n in range(101, 115)]
    assert any("cross-stage-write-race" in line for line in lines)


def test_cli_list_rules_flag():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        ["src"] + env.get("PYTHONPATH", "").split(os.pathsep))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--list-rules"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0
    assert "FG114" in proc.stdout


def test_effects_reports_stage_classifications():
    code, output = run_lint([CLEAN], effects=True)
    assert code == 0
    assert "/fill: pure" in output


def test_effects_json_carries_parallel_safety():
    code, output = run_lint([RACE_DEFECT], as_json=True, effects=True)
    payload = json.loads(output)
    rows = payload["effects"][RACE_DEFECT]
    assert {"program": "race-defect-fixture", "pipeline": "a",
            "stage": "bump_a",
            "parallel_safety": "write_shared"} in rows
