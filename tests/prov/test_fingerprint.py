"""Tests for code and stage-graph fingerprints.

The fingerprints are the provenance subsystem's notion of identity:
stable within one source tree / one program structure, different across
trees / structures, and never dependent on runtime state.
"""

import numpy as np

from repro.core import FGProgram, Stage
from repro.prov import (
    canonical_json,
    code_fingerprint,
    digest_json,
    program_graph,
    stage_graph_fingerprint,
    version_info,
)
from repro.sim import VirtualTimeKernel


def test_canonical_json_is_order_insensitive():
    a = canonical_json({"b": 1, "a": [1, 2]})
    b = canonical_json({"a": [1, 2], "b": 1})
    assert a == b == '{"a":[1,2],"b":1}'
    assert digest_json({"b": 1, "a": [1, 2]}) == digest_json(
        {"a": [1, 2], "b": 1})


def test_code_fingerprint_is_stable_and_hex():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    assert len(fp) == 64
    int(fp, 16)  # valid hex


def test_version_info_carries_both_identities():
    info = version_info()
    assert set(info) == {"repro_version", "code_fingerprint"}
    assert info["code_fingerprint"] == code_fingerprint()


def _program(kernel, nbuffers=2, rounds=3, extra_stage=False):
    prog = FGProgram(kernel, name="fp-test")

    def fill(ctx, buf):
        buf.put(np.zeros(4, dtype=np.uint8))
        return buf

    stages = [Stage.map("fill", fill)]
    if extra_stage:
        stages.append(Stage.map("echo", lambda ctx, b: b))
    prog.add_pipeline("p", stages, nbuffers=nbuffers, buffer_bytes=16,
                      rounds=rounds)
    return prog


def test_stage_graph_fingerprint_is_structure_only():
    """Same declared structure -> same fingerprint, even across kernels
    and before/after running."""
    k1, k2 = VirtualTimeKernel(), VirtualTimeKernel()
    p1, p2 = _program(k1), _program(k2)
    assert stage_graph_fingerprint(p1) == stage_graph_fingerprint(p2)
    k1.spawn(p1.run, name="driver")
    k1.run()
    assert stage_graph_fingerprint(p1) == stage_graph_fingerprint(p2)


def test_stage_graph_fingerprint_sees_structure_changes():
    kernel = VirtualTimeKernel()
    base = stage_graph_fingerprint(_program(VirtualTimeKernel()))
    assert stage_graph_fingerprint(
        _program(kernel, nbuffers=3)) != base
    assert stage_graph_fingerprint(
        _program(VirtualTimeKernel(), rounds=7)) != base
    assert stage_graph_fingerprint(
        _program(VirtualTimeKernel(), extra_stage=True)) != base


def test_program_graph_names_every_stage():
    graph = program_graph(_program(VirtualTimeKernel(), extra_stage=True))
    assert graph["name"] == "fp-test"
    (pipeline,) = graph["pipelines"]
    assert [s["name"] for s in pipeline["stages"]] == ["fill", "echo"]
    assert pipeline["nbuffers"] == 2
    assert pipeline["rounds"] == 3
