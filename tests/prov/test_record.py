"""Tests for the ProvenanceRecord format and its capture helpers."""

import io

import pytest

from repro.errors import ReproError
from repro.prov import (
    RECORD_VERSION,
    ProvenanceRecord,
    metrics_digest,
    output_digest,
    trace_digest,
    tune_decision_log,
)
from repro.sim import Tracer, VirtualTimeKernel
from repro.sim.trace import TUNE


def sample_record(**overrides):
    fields = dict(
        kind="sort",
        args={"sorter": "dsort", "distribution": "uniform",
              "record_bytes": 16, "n_nodes": 2, "n_per_node": 512,
              "block_records": None, "seed": 3, "tune": None},
        seeds={"workload": 3, "config": None},
        fault_plan=None,
        tune_decisions=[],
        stage_graphs={"dsort-p1@0": "ab" * 32},
        digests={"output": "cd" * 32, "metrics": "ef" * 32,
                 "trace": "01" * 32},
        repro_version="0.6.0",
        code_fingerprint="23" * 32,
    )
    fields.update(overrides)
    return ProvenanceRecord(**fields)


def test_save_load_round_trip(tmp_path):
    record = sample_record(created="2026-08-07T00:00:00Z")
    path = tmp_path / "run.prov.json"
    record.save(str(path))
    loaded = ProvenanceRecord.load(str(path))
    assert loaded == record
    assert loaded.record_digest() == record.record_digest()


def test_save_load_round_trip_via_file_objects():
    record = sample_record()
    buf = io.StringIO()
    record.save(buf)
    buf.seek(0)
    assert ProvenanceRecord.load(buf) == record


def test_record_digest_excludes_created_stamp():
    plain = sample_record()
    stamped = sample_record(created="2026-08-07T12:34:56Z")
    assert plain.record_digest() == stamped.record_digest()
    # but any substantive field changes the identity
    assert sample_record(args=dict(plain.args, seed=4)).record_digest() \
        != plain.record_digest()


def test_from_json_rejects_newer_versions_and_junk():
    with pytest.raises(ReproError, match="newer"):
        ProvenanceRecord.from_json(
            {"kind": "sort", "record_version": RECORD_VERSION + 1})
    with pytest.raises(ReproError, match="not a provenance record"):
        ProvenanceRecord.from_json({"no": "kind"})
    with pytest.raises(ReproError, match="not a provenance record"):
        ProvenanceRecord.from_json([1, 2, 3])


def test_from_json_ignores_unknown_fields():
    doc = sample_record().to_json()
    doc["some_future_extension"] = {"x": 1}
    assert ProvenanceRecord.from_json(doc) == sample_record()


def test_output_digest_is_plain_sha256():
    import hashlib

    assert output_digest(b"abc") == hashlib.sha256(b"abc").hexdigest()


def test_metrics_digest_tracks_snapshot_content():
    kernel = VirtualTimeKernel()
    registry = kernel.enable_metrics()
    registry.counter("c").inc(1)
    one = metrics_digest(registry.snapshot())
    assert one == metrics_digest(registry.snapshot())
    registry.counter("c").inc(1)
    assert metrics_digest(registry.snapshot()) != one


def test_trace_and_tune_capture():
    tracer = Tracer()
    kernel = VirtualTimeKernel(tracer=tracer)

    def worker():
        kernel.sleep(1.0)
        tracer.record(kernel.now(), "tuner", TUNE, "grow p.pool +1")
        kernel.sleep(1.0)

    kernel.spawn(worker, name="worker")
    kernel.run()
    digest = trace_digest(tracer)
    assert len(digest) == 64 and digest == trace_digest(tracer)
    log = tune_decision_log(tracer)
    assert log == [{"time": 1.0, "process": "tuner",
                    "detail": "grow p.pool +1"}]
    assert tune_decision_log(None) == []


def test_describe_mentions_the_essentials():
    text = sample_record(created="2026-08-07").describe()
    assert "kind=sort" in text
    assert "output sha256" in text
    assert "fault plan       none" in text
