"""Tests for the provenance CLI surface: --prov-out and `repro replay`."""

import json

import pytest

from repro.cli import main
from repro.prov import ProvenanceRecord


def record_via_sort(tmp_path, capsys):
    path = tmp_path / "sort.prov.json"
    code = main(["sort", "--sorter", "dsort", "--nodes", "2",
                 "--records-per-node", "512", "--seed", "3",
                 "--prov-out", str(path)])
    assert code == 0
    capsys.readouterr()
    return path


def test_sort_prov_out_writes_a_loadable_record(tmp_path, capsys):
    path = record_via_sort(tmp_path, capsys)
    record = ProvenanceRecord.load(str(path))
    assert record.kind == "sort"
    assert record.args["sorter"] == "dsort"
    assert record.digests["output"]


def test_replay_command_reproduces_a_recorded_sort(tmp_path, capsys):
    path = record_via_sort(tmp_path, capsys)
    assert main(["replay", str(path)]) == 0
    out = capsys.readouterr().out
    assert "REPRODUCED byte-exactly" in out


def test_replay_json_verdict_and_failure_exit(tmp_path, capsys):
    path = record_via_sort(tmp_path, capsys)
    assert main(["replay", str(path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True and doc["code_match"] is True
    # tamper with a digest: replay must notice and exit nonzero
    record = ProvenanceRecord.load(str(path))
    record.digests["trace"] = "0" * 64
    record.save(str(path))
    assert main(["replay", str(path)]) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_replay_script_emission(tmp_path, capsys):
    path = record_via_sort(tmp_path, capsys)
    script = tmp_path / "replay.py"
    assert main(["replay", str(path), "--script", str(script)]) == 0
    text = script.read_text()
    assert "from repro.prov import ProvenanceRecord, replay" in text
    assert '"kind": "sort"' in text


def test_chaos_prov_out(tmp_path, capsys):
    path = tmp_path / "chaos.prov.json"
    code = main(["chaos", "--nodes", "2", "--records-per-node", "400",
                 "--seed", "7", "--block-records", "64",
                 "--kill-disk-op", "20", "--prov-out", str(path)])
    assert code == 0
    assert "provenance record written" in capsys.readouterr().out
    record = ProvenanceRecord.load(str(path))
    assert record.kind == "chaos_dsort"
    assert record.fault_plan is not None


def test_replay_rejects_non_record_files(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"hello": "world"}\n')
    with pytest.raises(Exception, match="not a provenance record"):
        main(["replay", str(path)])
