"""End-to-end replay determinism tests (the tentpole's acceptance bar).

Record a seeded chaos dsort run and a tuned csort run, replay both, and
assert byte-identical reproduction — digests matching, stage graphs
matching, verdict REPRODUCED — including through the emitted standalone
replay script run as a subprocess.
"""

import os
import subprocess
import sys

import pytest

from repro.bench.harness import run_sort
from repro.errors import ReproError
from repro.faults import chaos_plan, run_chaos_dsort
from repro.pdm.records import RecordSchema
from repro.prov import ProvenanceRecord, emit_script, replay

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def chaos_record():
    plan = chaos_plan(7, 2, disk_fault_rate=0.02, drop_rate=0.01,
                      permanent_disk_op=20, permanent_disk_rank=0)
    report = run_chaos_dsort(n_nodes=2, records_per_node=400, seed=7,
                             plan=plan, pass_retries=2, block_records=64,
                             vertical_block_records=32,
                             out_block_records=64)
    assert report.verified
    assert report.provenance is not None
    return report.provenance


def tuned_csort_record():
    run = run_sort("csort", "uniform", RecordSchema.paper_16(),
                   n_nodes=2, n_per_node=1024, seed=5,
                   tune={"nbuffers": 6}, provenance=True)
    assert run.verified
    return run.provenance


def test_chaos_run_replays_byte_exactly():
    record = chaos_record()
    assert record.kind == "chaos_dsort"
    assert record.fault_plan is not None
    assert record.fault_plan["seed"] == 7
    result = replay(record)
    assert result.ok
    assert result.code_match
    assert result.matches == {"output": True, "metrics": True,
                              "trace": True}
    assert "REPRODUCED" in result.describe()


def test_tuned_csort_run_replays_byte_exactly():
    record = tuned_csort_record()
    assert record.kind == "sort"
    assert record.args["tune"] == {"nbuffers": 6}
    result = replay(record)
    assert result.ok
    assert result.replayed.digests == record.digests
    assert result.replayed.stage_graphs == record.stage_graphs


def test_recording_is_passive():
    """Capturing provenance must not perturb the run: digests of a
    captured run equal digests computed from an identical captured run
    (the replay tests above), and the record itself is deterministic."""
    a = tuned_csort_record()
    b = tuned_csort_record()
    assert a.record_digest() == b.record_digest()
    assert a.to_json() == b.to_json()


def test_tampered_digest_is_detected():
    record = tuned_csort_record()
    doc = record.to_json()
    doc["digests"]["output"] = "0" * 64
    tampered = ProvenanceRecord.from_json(doc)
    result = replay(tampered)
    assert not result.ok
    assert result.matches["output"] is False
    assert result.matches["metrics"] is True
    # same tree, so the divergence is flagged as nondeterminism
    assert result.code_match
    assert "DIVERGED" in result.describe()


def test_replay_rejects_unknown_kinds():
    record = ProvenanceRecord(kind="mystery")
    with pytest.raises(ReproError, match="cannot replay"):
        replay(record)
    with pytest.raises(ReproError, match="cannot emit"):
        emit_script(record)


def test_emitted_script_reproduces_the_run(tmp_path):
    record = chaos_record()
    script_path = tmp_path / "replay_chaos.py"
    text = emit_script(record, str(script_path))
    assert text == script_path.read_text()
    assert emit_script(record) == text  # deterministic emission
    env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
    proc = subprocess.run([sys.executable, str(script_path)],
                          capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "REPRODUCED byte-exactly" in proc.stdout
