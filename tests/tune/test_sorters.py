"""Sorter tuning tests: spaces, run_sort(tune=...), offline + adaptive."""

import pytest

from repro.bench.harness import run_sort
from repro.errors import ReproError
from repro.pdm.records import RecordSchema
from repro.tune import (
    adaptive_tune_sort,
    csort_space,
    dsort_space,
    sort_evaluator,
    tune_sort,
)

SCHEMA = RecordSchema.paper_16()


# -- spaces ------------------------------------------------------------------

def test_dsort_space_defaults_match_the_hand_tuned_config():
    from repro.bench.harness import default_dsort_config

    space = dsort_space(2, 1024)
    default = default_dsort_config(2048, 2)
    config = space.default_config()
    assert config["block_records"] == default.block_records
    assert config["nbuffers"] == default.nbuffers
    assert config["sort_replicas"] == 1


def test_csort_space_only_offers_valid_column_counts():
    from repro.sorting.columnsort.steps import validate_shape

    space = csort_space(4, 4096)
    n_total = 4 * 4096
    (s_axis,) = [a for a in space.axes if a.name == "s_override"]
    for s in s_axis.values:
        validate_shape(n_total, n_total // s, s, 4)  # must not raise
    assert len(s_axis.values) >= 2   # there is something to search


def test_unknown_sorter_has_no_space():
    with pytest.raises(ReproError, match="no tune space"):
        tune_sort("bogosort", n_nodes=2, n_per_node=256)


# -- run_sort(tune=...) ------------------------------------------------------

def test_run_sort_rejects_unknown_tune_keys():
    with pytest.raises(ReproError, match="bogus"):
        run_sort("dsort", "uniform", SCHEMA, n_nodes=2, n_per_node=256,
                 seed=0, tune={"bogus": 1})


def test_tune_override_changes_the_run():
    base = run_sort("dsort", "uniform", SCHEMA, n_nodes=2, n_per_node=1024,
                    seed=0)
    tuned = run_sort("dsort", "uniform", SCHEMA, n_nodes=2,
                     n_per_node=1024, seed=0,
                     tune={"block_records": 256})
    assert base.verified and tuned.verified
    assert tuned.total_time != base.total_time


def test_evaluator_is_deterministic():
    evaluate = sort_evaluator("dsort", n_nodes=2, n_per_node=512, seed=3)
    config = {"block_records": 256, "nbuffers": 4, "sort_replicas": 1}
    assert evaluate(config) == evaluate(config)


# -- offline + adaptive tuners ----------------------------------------------

def test_hill_climb_tunes_dsort_and_never_regresses():
    result = tune_sort("dsort", n_nodes=2, n_per_node=1024, seed=0,
                       method="hill")
    assert result.best_score <= result.baseline_score
    assert result.improvement >= 0.0
    assert result.evaluations >= 1
    doc = result.to_json()
    assert doc["method"] == "hill"
    assert doc["best_score"] == result.best_score


def test_tune_sort_rejects_unknown_method():
    with pytest.raises(ReproError, match="unknown tune method"):
        tune_sort("dsort", n_nodes=2, n_per_node=256, method="anneal")


def test_adaptive_matches_or_beats_its_own_baseline():
    result = adaptive_tune_sort("dsort", n_nodes=2, n_per_node=1024,
                                seed=0, max_runs=6)
    assert result.best_score <= result.baseline_score
    assert result.evaluations <= 6
    # every history entry carries the signals that drove the next probe
    for config, score, signals in result.history:
        assert set(signals) == {"block_records", "sort_replicas",
                                "nbuffers"}
    doc = result.to_json()
    assert doc["method"] == "adaptive"
    assert len(doc["history"]) == len(result.history)


def test_adaptive_is_deterministic():
    def run():
        result = adaptive_tune_sort("csort", n_nodes=2, n_per_node=1024,
                                    seed=0, max_runs=4)
        return result.best, result.best_score, result.evaluations

    assert run() == run()
