"""Feedback-controller tests: policy hysteresis, end-to-end control.

The end-to-end tests drive a compute-bound demo pipeline: a fast feed
stage in front of a slow replicated work stage, so the work stage's
inbound channel backlogs and replication genuinely shortens the run.
"""

import pytest

from repro.core import FGProgram, Stage
from repro.errors import ReproError
from repro.sim import VirtualTimeKernel
from repro.tune import (
    BacklogPolicy,
    PoolSignal,
    StageSignal,
    TuneAction,
    TuneController,
    TuneSample,
)


# -- BacklogPolicy unit tests ------------------------------------------------

def stage_sig(backlog=2.0, busy=1.0, replicas=1, window=1.0):
    wait = (1.0 - busy) * window * max(1, replicas)
    return StageSignal(pipeline="p", stage="work", replicas=replicas,
                       accepts=10.0, wait_seconds=wait, backlog=backlog,
                       backlog_limit=4.0, window=window)


def pool_sig(nbuffers=4, in_flight=4.0):
    return PoolSignal(pipeline="p", nbuffers=nbuffers, in_flight=in_flight)


def sample(stages=(), pools=(), t0=0.0, t1=1.0):
    return TuneSample(t0, t1, tuple(stages), tuple(pools))


def test_policy_waits_out_patience_then_replicates():
    policy = BacklogPolicy(patience=2, cooldown=0)
    assert policy.decide(sample(stages=[stage_sig()])) == []
    actions = policy.decide(sample(stages=[stage_sig()]))
    assert [a.kind for a in actions] == ["add_replica"]
    assert actions[0].stage == "work"
    assert "backlog" in actions[0].reason


def test_policy_cooldown_blocks_back_to_back_actions():
    policy = BacklogPolicy(patience=1, cooldown=2)
    assert [a.kind for a in policy.decide(sample(stages=[stage_sig()]))] \
        == ["add_replica"]
    # the cooldown window blocks the immediately following sample, then
    # the (re-earned) streak makes the stage eligible again
    assert policy.decide(sample(stages=[stage_sig()])) == []
    assert [a.kind for a in policy.decide(sample(stages=[stage_sig()]))] \
        == ["add_replica"]


def test_policy_respects_replica_cap():
    policy = BacklogPolicy(patience=1, cooldown=0, max_replicas=2)
    assert policy.decide(sample(stages=[stage_sig(replicas=2)])) == []


def test_policy_replicates_only_the_busiest_candidate():
    policy = BacklogPolicy(patience=1, cooldown=0)
    low = StageSignal(pipeline="p", stage="cold", replicas=1, accepts=5.0,
                      wait_seconds=0.4, backlog=2.0, backlog_limit=4.0,
                      window=1.0)
    hot = stage_sig(busy=1.0)
    actions = policy.decide(sample(stages=[low, hot]))
    assert [a.stage for a in actions] == ["work"]


def test_policy_ignores_idle_or_unbacklogged_stages():
    policy = BacklogPolicy(patience=1, cooldown=0)
    assert policy.decide(sample(stages=[stage_sig(backlog=0.2)])) == []
    assert policy.decide(sample(stages=[stage_sig(busy=0.2)])) == []


def test_policy_grows_a_starved_pool():
    policy = BacklogPolicy(patience=2, cooldown=0)
    assert policy.decide(sample(pools=[pool_sig()])) == []
    actions = policy.decide(sample(pools=[pool_sig()]))
    assert [a.kind for a in actions] == ["add_buffers"]
    assert "starved" in actions[0].reason


def test_policy_pool_cap_blocks_growth():
    policy = BacklogPolicy(patience=1, cooldown=0, max_buffers=4)
    assert policy.decide(sample(pools=[pool_sig(nbuffers=4)])) == []


def test_policy_shrink_never_goes_below_attach_floor():
    policy = BacklogPolicy(patience=1, cooldown=0, shrink=True)
    idle = pool_sig(nbuffers=4, in_flight=0.5)
    # the first sample records nbuffers=4 as the floor: never shrinks
    for _ in range(6):
        assert policy.decide(sample(pools=[idle])) == []
    # a pool that grew above its floor does shrink once idle long enough
    grown = pool_sig(nbuffers=6, in_flight=0.5)
    acted = []
    for _ in range(3):
        acted.extend(policy.decide(sample(pools=[grown])))
    assert acted and all(a.kind == "retire_buffers" for a in acted)


def test_policy_validates_hysteresis_parameters():
    with pytest.raises(ReproError):
        BacklogPolicy(patience=0)
    with pytest.raises(ReproError):
        BacklogPolicy(cooldown=-1)


# -- end-to-end control ------------------------------------------------------

def run_demo(*, controlled, rounds=24, work_time=0.02, interval=0.03):
    """A fast feed stage ahead of a slow replicated work stage."""
    kernel = VirtualTimeKernel()
    kernel.enable_metrics()
    prog = FGProgram(kernel, name="demo")

    def feed(ctx, buf):
        return buf

    def work(ctx, buf):
        kernel.sleep(work_time)
        return buf

    prog.add_pipeline(
        "p", [Stage.map("feed", feed), Stage.map("work", work)],
        nbuffers=4, buffer_bytes=8, rounds=rounds,
        replicas={"work": 1})

    controller = None

    def driver():
        nonlocal controller
        prog.start()
        if controlled:
            controller = TuneController(
                prog, interval,
                policy=BacklogPolicy(patience=1, cooldown=0,
                                     max_replicas=4))
            controller.start()
        prog.wait()

    kernel.spawn(driver, name="driver")
    kernel.run()
    return kernel.now(), prog, controller


def test_controller_shortens_a_compute_bound_run():
    base_time, _, _ = run_demo(controlled=False)
    tuned_time, prog, controller = run_demo(controlled=True)
    assert tuned_time < base_time
    kinds = [d.action.kind for d in controller.decisions if d.applied]
    assert "add_replica" in kinds
    (rset,) = prog.replica_sets()
    assert rset.total > 1


def test_controlled_run_is_deterministic():
    def snapshot():
        t, _, controller = run_demo(controlled=True)
        return t, [(d.time, d.action.kind, d.applied)
                   for d in controller.decisions]

    assert snapshot() == snapshot()


def test_controller_records_decisions_in_metrics_and_trace():
    _, prog, controller = run_demo(controlled=True)
    registry = prog.kernel.metrics
    applied = [d for d in controller.decisions if d.applied]
    assert registry.get("tune.decisions").value == len(controller.decisions)
    tracer = getattr(prog.kernel, "tracer", None)
    if tracer is not None:
        tuned = [ev for ev in tracer.events if ev.kind == "tune"]
        assert len(tuned) >= len(applied)


def test_controller_requires_started_program_and_metrics():
    kernel = VirtualTimeKernel()
    kernel.enable_metrics()
    prog = FGProgram(kernel, name="demo")
    prog.add_pipeline("p", [Stage.map("m", lambda ctx, buf: buf)],
                      nbuffers=2, buffer_bytes=8, rounds=1)
    controller = TuneController(prog, 0.01)
    with pytest.raises(ReproError, match="started"):
        controller.start()

    kernel2 = VirtualTimeKernel()  # no metrics enabled
    prog2 = FGProgram(kernel2, name="demo2")
    prog2.add_pipeline("p", [Stage.map("m", lambda ctx, buf: buf)],
                       nbuffers=2, buffer_bytes=8, rounds=1)

    failures = []

    def driver():
        prog2.start()
        try:
            TuneController(prog2, 0.01).start()
        except ReproError as exc:
            failures.append(str(exc))
        prog2.wait()

    kernel2.spawn(driver, name="driver")
    kernel2.run()
    assert failures and "metrics" in failures[0]


def test_controller_rejects_bad_interval_and_double_start():
    kernel = VirtualTimeKernel()
    kernel.enable_metrics()
    prog = FGProgram(kernel, name="demo")
    prog.add_pipeline("p", [Stage.map("m", lambda ctx, buf: buf)],
                      nbuffers=2, buffer_bytes=8, rounds=1)
    with pytest.raises(ReproError):
        TuneController(prog, 0.0)

    started = []

    def driver():
        prog.start()
        controller = TuneController(prog, 0.01)
        controller.start()
        try:
            controller.start()
        except ReproError as exc:
            started.append(str(exc))
        prog.wait()

    kernel.spawn(driver, name="driver")
    kernel.run()
    assert started and "already started" in started[0]


def test_controller_refuses_to_replicate_a_shared_state_writer():
    # the effect analysis classifies `work` as WRITE_SHARED: adding a
    # copy would race on state['n'], so apply() must reject the action
    # regardless of what the policy decided
    kernel = VirtualTimeKernel()
    kernel.enable_metrics()
    prog = FGProgram(kernel, name="unsafe-demo",
                     lint_ignore={"FG109", "FG110"})
    state = {"n": 0}

    def work(ctx, buf):
        state["n"] += 1
        return buf

    prog.add_pipeline("p", [Stage.map("work", work)],
                      nbuffers=4, buffer_bytes=8, rounds=4,
                      replicas={"work": 1})
    results = []

    def driver():
        prog.start()
        controller = TuneController(prog, 0.01)
        results.append(controller.apply(TuneAction(
            "add_replica", "p", stage="work", reason="backlog")))
        results.append(controller)
        prog.wait()

    kernel.spawn(driver, name="driver")
    kernel.run()
    applied, controller = results
    assert applied is False
    assert controller.decisions[0].applied is False
    assert kernel.metrics.counter("tune.add_replica.unsafe").value == 1


def test_controller_still_replicates_pure_stages():
    _, prog, controller = run_demo(controlled=True)
    assert any(d.action.kind == "add_replica" and d.applied
               for d in controller.decisions)
