"""Offline search tests: axes, spaces, grid, hill climb, determinism."""

import pytest

from repro.errors import ReproError
from repro.tune import Axis, TuneSpace, grid_search, hill_climb


def quadratic_evaluator(optimum):
    """Separable convex score with its minimum at ``optimum``."""
    calls = []

    def evaluate(config):
        calls.append(dict(config))
        return float(sum((config[k] - v) ** 2 for k, v in optimum.items()))

    evaluate.calls = calls
    return evaluate


def small_space():
    return TuneSpace([
        Axis("x", (0, 1, 2, 3, 4), default=0),
        Axis("y", (0, 1, 2), default=0),
    ])


# -- Axis / TuneSpace --------------------------------------------------------

def test_axis_default_falls_back_to_first_value():
    assert Axis("a", (3, 5, 7)).default == 3


def test_axis_rejects_empty_duplicate_and_foreign_default():
    with pytest.raises(ReproError):
        Axis("a", ())
    with pytest.raises(ReproError):
        Axis("a", (1, 1, 2))
    with pytest.raises(ReproError):
        Axis("a", (1, 2), default=9)


def test_space_rejects_duplicate_axis_names():
    with pytest.raises(ReproError):
        TuneSpace([Axis("a", (1,)), Axis("a", (2,))])
    with pytest.raises(ReproError):
        TuneSpace([])


def test_space_size_and_grid_are_lexicographic():
    space = small_space()
    assert space.size() == 15
    grid = space.grid()
    assert len(grid) == 15
    assert grid[0] == {"x": 0, "y": 0}
    assert grid[1] == {"x": 0, "y": 1}   # last axis varies fastest
    assert grid[-1] == {"x": 4, "y": 2}


def test_neighbors_are_coordinate_moves_in_fixed_order():
    space = small_space()
    assert space.neighbors({"x": 1, "y": 0}) == [
        {"x": 0, "y": 0}, {"x": 2, "y": 0},   # x minus then plus
        {"x": 1, "y": 1},                      # y has no minus neighbor
    ]


# -- searches ----------------------------------------------------------------

def test_grid_search_finds_the_global_optimum():
    evaluate = quadratic_evaluator({"x": 3, "y": 1})
    result = grid_search(evaluate, small_space())
    assert result.best == {"x": 3, "y": 1}
    assert result.best_score == 0.0
    assert result.baseline == {"x": 0, "y": 0}
    assert result.baseline_score == 10.0
    assert result.method == "grid"
    # baseline evaluated once, then served from cache during the sweep
    assert result.evaluations == 15


def test_hill_climb_descends_to_the_optimum_on_convex_landscape():
    evaluate = quadratic_evaluator({"x": 3, "y": 1})
    result = hill_climb(evaluate, small_space())
    assert result.best == {"x": 3, "y": 1}
    assert result.best_score == 0.0
    assert 0 < result.evaluations < 15    # cheaper than the grid
    assert result.improvement == 1.0


def test_hill_climb_stops_at_baseline_when_nothing_improves():
    evaluate = quadratic_evaluator({"x": 0, "y": 0})
    result = hill_climb(evaluate, small_space())
    assert result.best == {"x": 0, "y": 0}
    assert result.improvement == 0.0


def test_hill_climb_rejects_foreign_start_keys():
    evaluate = quadratic_evaluator({"x": 0, "y": 0})
    with pytest.raises(ReproError, match="non-axis"):
        hill_climb(evaluate, small_space(), start={"x": 0, "z": 1})


def test_searches_are_deterministic():
    def run():
        evaluate = quadratic_evaluator({"x": 2, "y": 2})
        result = hill_climb(evaluate, small_space())
        return (result.best, result.best_score,
                [(t.config, t.score, t.cached) for t in result.trials])

    assert run() == run()


def test_to_json_is_sorted_and_excludes_cache_hits():
    evaluate = quadratic_evaluator({"x": 1, "y": 1})
    result = hill_climb(evaluate, small_space())
    doc = result.to_json()
    assert list(doc["best"]) == sorted(doc["best"])
    assert len(doc["trials"]) == result.evaluations
    assert doc["improvement"] == result.improvement
