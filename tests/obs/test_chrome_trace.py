"""Tests for the Chrome-trace exporter.

The golden-file test locks down the exact JSON produced by a small
deterministic scenario: under the virtual-time kernel the export must be
byte-stable, run after run, machine after machine.  Regenerate the golden
file (after an intentional format change) with::

    PYTHONPATH=src python tests/obs/test_chrome_trace.py
"""

import io
import json
import os

from repro.obs import chrome_trace, write_chrome_trace, write_metrics_json
from repro.sim import Channel, Tracer, VirtualTimeKernel

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_trace.json")

#: otherData keys that change with every code revision by design (the
#: version stamp exports carry — see repro.prov); the golden comparison
#: normalizes them so the golden file doesn't churn on unrelated changes
VOLATILE_META = ("code_fingerprint", "repro_version")


def _normalized(raw: str) -> str:
    doc = json.loads(raw)
    for key in VOLATILE_META:
        doc.get("otherData", {}).pop(key, None)
    return json.dumps(doc, sort_keys=True)


def tiny_scenario():
    """Two processes handing three items over a capacity-1 channel."""
    tracer = Tracer()
    kernel = VirtualTimeKernel(tracer=tracer)
    registry = kernel.enable_metrics()
    # created after enable_metrics, so the channel self-instruments its
    # occupancy gauge and delivered counter
    ch = Channel(kernel, capacity=1, name="ch")

    def producer():
        for i in range(3):
            kernel.sleep(1.0)
            ch.put(i)

    def consumer():
        for _ in range(3):
            ch.get()
            kernel.sleep(2.0)

    kernel.spawn(producer, name="producer")
    kernel.spawn(consumer, name="consumer")
    kernel.run()
    return tracer, registry


def test_chrome_trace_matches_golden_file():
    tracer, registry = tiny_scenario()
    out = io.StringIO()
    write_chrome_trace(out, tracer, metrics=registry)
    with open(GOLDEN_PATH) as fh:
        assert _normalized(out.getvalue()) == _normalized(fh.read())


def test_document_structure():
    tracer, registry = tiny_scenario()
    doc = chrome_trace(tracer, metrics=registry)
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["process_count"] == 2
    # every export is stamped with the identity of the code that made it
    assert len(doc["otherData"]["code_fingerprint"]) == 64
    assert doc["otherData"]["repro_version"]
    kinds = {ev["ph"] for ev in doc["traceEvents"]}
    assert kinds == {"M", "X", "C"}
    # one thread_name + one thread_sort_index metadata row per process
    meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
    assert len(meta) == 4
    names = {ev["args"]["name"] for ev in meta
             if ev["name"] == "thread_name"}
    assert names == {"producer", "consumer"}
    # every slice has microsecond ts/dur and a normalized name
    for ev in doc["traceEvents"]:
        if ev["ph"] == "X":
            assert ev["dur"] >= 0 and ev["ts"] >= 0
            assert "sleep" not in ev["name"]   # collapsed to "work"
    # the channel's occupancy gauge samples became counter events
    counters = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
    assert counters and all(ev["name"] == "channel.ch.occupancy"
                            for ev in counters)


def test_processes_filter_limits_thread_rows():
    tracer, registry = tiny_scenario()
    doc = chrome_trace(tracer, processes=["consumer"])
    assert doc["otherData"]["process_count"] == 1
    tids = {ev["tid"] for ev in doc["traceEvents"]}
    assert tids == {0}


def test_export_is_deterministic_across_runs():
    def render():
        tracer, registry = tiny_scenario()
        out = io.StringIO()
        write_chrome_trace(out, tracer, metrics=registry)
        return out.getvalue()

    assert render() == render()


def test_output_is_valid_loadable_json(tmp_path):
    tracer, registry = tiny_scenario()
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.json"
    write_chrome_trace(str(trace_path), tracer, metrics=registry)
    write_metrics_json(str(metrics_path), registry)
    doc = json.loads(trace_path.read_text())
    assert isinstance(doc["traceEvents"], list)
    snap = json.loads(metrics_path.read_text())
    assert set(snap) >= {"captured_at", "counters", "gauges", "histograms"}
    assert len(snap["meta"]["code_fingerprint"]) == 64
    assert snap["meta"]["repro_version"]


def _regenerate_golden():
    tracer, registry = tiny_scenario()
    write_chrome_trace(GOLDEN_PATH, tracer, metrics=registry)
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate_golden()
