"""Tests for bottleneck analysis on deliberately unbalanced pipelines."""

import pytest

from repro.core import FGProgram, Stage
from repro.obs import analyze_bottleneck
from repro.obs.bottleneck import normalize_reason
from repro.sim import Tracer, VirtualTimeKernel


def run_unbalanced(slow_stage="mid", slow=4e-3, fast=1e-3, rounds=6):
    """A 3-stage pipeline where one stage does 4x the timed work."""
    tracer = Tracer()
    kernel = VirtualTimeKernel(tracer=tracer)

    def make(name):
        def fn(ctx, buf):
            kernel.sleep(slow if name == slow_stage else fast)
            return buf
        return Stage.map(name, fn)

    prog = FGProgram(kernel, name="ub")
    prog.add_pipeline("p", [make("pre"), make("mid"), make("post")],
                      nbuffers=3, buffer_bytes=64, rounds=rounds)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    stage_rows = [n for n in tracer.process_names()
                  if n in ("ub.pre", "ub.mid", "ub.post")]
    return analyze_bottleneck(tracer, processes=stage_rows)


def test_names_the_slow_stage():
    report = run_unbalanced()
    assert report.bottleneck.process == "ub.mid"
    # the slow stage is busiest; the others spend the difference blocked
    mid = report.breakdown_of("ub.mid")
    pre = report.breakdown_of("ub.pre")
    assert mid.busy > 2 * pre.busy
    assert pre.contend + pre.wait > mid.contend + mid.wait


def test_bottleneck_follows_the_work():
    report = run_unbalanced(slow_stage="post")
    assert report.bottleneck.process == "ub.post"


def test_breakdown_totals_and_span():
    report = run_unbalanced()
    assert report.span > 0
    for b in report.breakdowns:
        assert b.total == pytest.approx(b.busy + b.contend + b.wait)
        assert b.total <= report.span + 1e-9
    # sorted by busy time, descending
    busys = [b.busy for b in report.breakdowns]
    assert busys == sorted(busys, reverse=True)


def test_blocked_reasons_name_queues():
    report = run_unbalanced()
    pre = report.breakdown_of("ub.pre")
    # the fast upstream stage blocks conveying into the slow stage's queue
    reasons = dict(pre.top_reasons(5))
    assert any("put" in r or "get" in r for r in reasons)
    assert all(seconds > 0 for seconds in reasons.values())


def test_render_marks_bottleneck_and_blocked_reasons():
    report = run_unbalanced()
    text = report.render()
    assert "<-- bottleneck" in text
    assert "'ub.mid'" in text
    assert "where 'ub.mid' blocks:" in text or "busy" in text
    assert "busy%" in text and "wait%" in text


def test_empty_trace_renders_gracefully():
    report = analyze_bottleneck(Tracer())
    assert report.bottleneck is None
    assert report.render() == "(no processes traced)"


def test_normalize_reason_collapses_sleep_details():
    assert normalize_reason("work", "sleep until t=0.0123") == "work"
    assert normalize_reason("wait", "sleep until t=9") == "work"
    assert normalize_reason("run", "") == "run"
    assert normalize_reason("wait", "get <- fg.p->sort") == \
        "get <- fg.p->sort"
    assert normalize_reason("contend", "acquire 1x node0.disk") == \
        "acquire 1x node0.disk"
    assert normalize_reason("wait", "") == "wait"
