"""Time-series tests: binning, discovery, rendering, gauge slicing."""

import pytest

from repro.core import FGProgram, Stage
from repro.obs import (
    SeriesBin,
    StageSeries,
    gauge_series,
    instrumented_programs,
    render_stage_series,
    stage_series,
)
from repro.sim import VirtualTimeKernel


def run_instrumented(rounds=8, work_time=0.01):
    kernel = VirtualTimeKernel()
    registry = kernel.enable_metrics()
    prog = FGProgram(kernel, name="ts")

    def fast(ctx, buf):
        return buf

    def slow(ctx, buf):
        kernel.sleep(work_time)
        return buf

    prog.add_pipeline("p", [Stage.map("fast", fast),
                            Stage.map("slow", slow)],
                      nbuffers=2, buffer_bytes=8, rounds=rounds)
    kernel.spawn(prog.run, name="driver")
    kernel.run()
    return kernel, registry


def test_series_bin_derived_quantities():
    b = SeriesBin(0.0, 2.0, accepts=4, wait_seconds=1.0)
    assert b.mean_wait == 0.25
    assert b.wait_fraction == 0.5
    idle = SeriesBin(0.0, 2.0, accepts=0, wait_seconds=0.0)
    assert idle.mean_wait == 0.0


def test_instrumented_programs_discovered_from_registry():
    _, registry = run_instrumented()
    assert instrumented_programs(registry) == ["ts"]


def test_stage_series_totals_match_the_run():
    kernel, registry = run_instrumented(rounds=8)
    series = stage_series(registry, "ts", bins=6)
    by_stage = {s.stage: s for s in series}
    assert set(by_stage) == {"fast", "slow"}
    for s in series:
        assert len(s.bins) == 6
        # an accept stamped exactly at t0=0 sits on the window edge and
        # is excluded by the half-open delta; everything else is binned
        assert 7 <= s.total_accepts <= 8
    # the fast stage spends its life starved by the slow one downstream:
    # backpressure shows up as wait somewhere in the pipeline
    assert sum(s.total_wait for s in series) > 0


def test_stage_series_window_slicing_is_consistent():
    kernel, registry = run_instrumented(rounds=8)
    end = kernel.now()
    full = {s.stage: s for s in stage_series(registry, "ts", bins=4)}
    first = {s.stage: s
             for s in stage_series(registry, "ts", t1=end / 2, bins=2)}
    second = {s.stage: s
              for s in stage_series(registry, "ts", t0=end / 2, bins=2)}
    for name in full:
        assert (first[name].total_accepts + second[name].total_accepts
                == pytest.approx(full[name].total_accepts))


def test_sparkline_and_peak_bin():
    s = StageSeries("x", (
        SeriesBin(0, 1, 2, 0.0),
        SeriesBin(1, 2, 2, 0.5),
        SeriesBin(2, 3, 2, 0.1),
    ))
    line = s.sparkline()
    assert len(line) == 3
    assert line[0] == " "                  # no wait -> lightest glyph
    assert line[1] == "@"                  # peak -> heaviest glyph
    assert s.peak_wait_bin().t0 == 1
    never = StageSeries("y", (SeriesBin(0, 1, 2, 0.0),))
    assert never.peak_wait_bin() is None
    assert never.sparkline() == " "


def test_gauge_series_slices_sampled_gauges():
    kernel, registry = run_instrumented()
    names = [n for n in registry.names()
             if n.startswith("channel.") and n.endswith(".occupancy")]
    assert names
    levels = gauge_series(registry, names[0], bins=5)
    assert len(levels) == 5
    assert all(lv >= 0 for lv in levels)


def test_gauge_series_rejects_unknown_and_non_gauges():
    _, registry = run_instrumented()
    with pytest.raises(KeyError):
        gauge_series(registry, "no.such.metric")
    counter_name = next(n for n in registry.names()
                        if n.endswith(".accepts"))
    with pytest.raises(ValueError):
        gauge_series(registry, counter_name)


def test_render_stage_series_table():
    _, registry = run_instrumented()
    series = stage_series(registry, "ts", bins=8)
    text = render_stage_series(series)
    lines = text.splitlines()
    assert "wait profile" in lines[0]
    assert len(lines) == 1 + len(series)
    for s in series:
        assert any(line.startswith(s.stage) for line in lines[1:])


def test_render_empty_series_says_what_to_do():
    assert "enable kernel metrics" in render_stage_series([])


def test_stage_series_rejects_bad_windows():
    _, registry = run_instrumented()
    with pytest.raises(ValueError):
        stage_series(registry, "ts", bins=0)
    with pytest.raises(ValueError):
        stage_series(registry, "ts", t0=5.0, t1=1.0)
