"""Tests for the metrics registry (counters, gauges, histograms).

The interesting semantics are time-weighting under the virtual-time
kernel: a gauge's average is the integral of its value over *kernel*
time, so the numbers are exact consequences of the cost model.
"""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim import VirtualTimeKernel


def manual_clock(times):
    """A clock that pops successive timestamps (last one sticks)."""
    it = iter(times)
    last = [0.0]

    def clock():
        try:
            last[0] = next(it)
        except StopIteration:
            pass
        return last[0]

    return clock


# -- counters ---------------------------------------------------------------

def test_counter_accumulates_and_rejects_decrease():
    c = Counter("c", lambda: 0.0)
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


# -- gauges (time-weighted) -------------------------------------------------

def test_gauge_time_average_is_integral_over_kernel_time():
    kernel = VirtualTimeKernel()
    registry = kernel.enable_metrics()
    g = registry.gauge("occupancy")

    def proc():
        g.set(2)            # t=0: level 2
        kernel.sleep(1.0)
        g.set(4)            # t=1: level 4
        kernel.sleep(3.0)
        g.set(0)            # t=4: level 0

    kernel.spawn(proc)
    kernel.run()
    # integral = 2*1 + 4*3 = 14 over 4 seconds
    assert g.time_average() == pytest.approx(14 / 4)
    assert g.max == 4 and g.value == 0


def test_gauge_one_long_visit_weighs_like_many_short_ones():
    def run(schedule):
        kernel = VirtualTimeKernel()
        g = kernel.enable_metrics().gauge("g")

        def proc():
            for level, hold in schedule:
                g.set(level)
                kernel.sleep(hold)
            g.set(0)

        kernel.spawn(proc)
        kernel.run()
        return g.time_average(now=4.0)

    # one second at level 4 == four one-second visits to level 1
    assert run([(4, 1.0), (0, 3.0)]) == pytest.approx(
        run([(1, 1.0), (1.0001, 0.0), (1, 1.0), (1.0001, 0.0),
             (1, 1.0), (1.0001, 0.0), (1, 1.0)]), rel=1e-3)


def test_gauge_set_to_same_value_records_nothing():
    g = Gauge("g", manual_clock([0.0, 1.0]), record_samples=True)
    g.set(0.0)      # no-op: already 0
    g.set(3.0)
    g.set(3.0)      # no-op
    assert g.samples == [(1.0, 3.0)]


def test_gauge_level_bounds_accumulate_time_at_level():
    kernel = VirtualTimeKernel()
    g = kernel.enable_metrics().gauge("depth", level_bounds=(0, 1, 2, 4))

    def proc():
        g.set(1)
        kernel.sleep(2.0)   # 2 s at depth 1
        g.set(3)
        kernel.sleep(1.0)   # 1 s at depth 3 (bucket <=4)
        g.set(0)

    kernel.spawn(proc)
    kernel.run()
    levels = g.level_distribution()
    assert levels.weights[1] == pytest.approx(2.0)   # <=1 bucket
    assert levels.weights[3] == pytest.approx(1.0)   # <=4 bucket


def test_gauge_add_is_relative():
    g = Gauge("g", manual_clock([0.0, 1.0, 2.0]))
    g.add(2)
    g.add(-1)
    assert g.value == 1
    assert g.min == 0.0 and g.max == 2


# -- histograms -------------------------------------------------------------

def test_histogram_buckets_and_weighted_mean():
    h = Histogram("h", lambda: 0.0, bounds=(1.0, 2.0))
    h.observe(0.5)              # bucket 0
    h.observe(1.5, weight=3.0)  # bucket 1, time-weighted
    h.observe(9.0)              # overflow
    assert h.weights == [1.0, 3.0, 1.0]
    assert h.count == 3
    assert h.mean() == pytest.approx((0.5 + 1.5 * 3 + 9.0) / 5.0)
    assert (h.min, h.max) == (0.5, 9.0)


def test_histogram_rejects_bad_input():
    with pytest.raises(ValueError):
        Histogram("h", lambda: 0.0, bounds=(2.0, 1.0))
    h = Histogram("h", lambda: 0.0)
    with pytest.raises(ValueError):
        h.observe(1.0, weight=-0.5)


def test_empty_histogram_mean_is_zero():
    assert Histogram("h", lambda: 0.0).mean() == 0.0


# -- registry ---------------------------------------------------------------

def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry(lambda: 0.0)
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert len(registry) == 2
    assert registry.names() == ["a", "b"]
    assert registry.get("missing") is None


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry(lambda: 0.0)
    registry.counter("x")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x")


def test_snapshot_groups_by_kind_and_stamps_kernel_time():
    kernel = VirtualTimeKernel()
    registry = kernel.enable_metrics()

    def proc():
        registry.counter("hits", unit="1").inc(7)
        registry.gauge("depth").set(2)
        kernel.sleep(1.5)
        registry.histogram("lat", bounds=(1.0,)).observe(0.5)

    kernel.spawn(proc)
    kernel.run()
    snap = registry.snapshot()
    assert snap["captured_at"] == pytest.approx(1.5)
    assert snap["counters"]["hits"]["value"] == 7
    assert snap["gauges"]["depth"]["time_average"] == pytest.approx(2.0)
    assert snap["histograms"]["lat"]["weights"] == [1.0, 0.0]


def test_enable_metrics_is_idempotent():
    kernel = VirtualTimeKernel()
    assert kernel.metrics is None
    registry = kernel.enable_metrics()
    assert kernel.enable_metrics() is registry
    assert kernel.metrics is registry


def test_virtual_runs_are_metric_deterministic():
    def run():
        kernel = VirtualTimeKernel()
        registry = kernel.enable_metrics()
        g = registry.gauge("q")

        def producer():
            for i in range(5):
                kernel.sleep(0.25)
                g.add(1)

        def consumer():
            for i in range(5):
                kernel.sleep(0.4)
                g.add(-1)

        kernel.spawn(producer)
        kernel.spawn(consumer)
        kernel.run()
        return registry.snapshot()

    assert run() == run()
