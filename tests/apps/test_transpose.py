"""Tests for the out-of-core matrix transpose application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.transpose import MATRIX_FILE, OUTPUT_FILE, run_transpose
from repro.cluster import Cluster, HardwareModel
from repro.errors import SortError


def fast_hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


def setup_matrix(cluster, n, seed=0):
    """Write row blocks of a random N x N matrix; return the matrix."""
    rng = np.random.default_rng(seed)
    matrix = rng.random((n, n))
    rows = n // cluster.n_nodes
    for p, node in enumerate(cluster.nodes):
        block = np.ascontiguousarray(matrix[p * rows:(p + 1) * rows])
        node.disk.storage.write(MATRIX_FILE, 0,
                                block.reshape(-1).view(np.uint8))
    return matrix


def read_result(cluster, n):
    rows = n // cluster.n_nodes
    blocks = []
    for node in cluster.nodes:
        raw = node.disk.storage.read(OUTPUT_FILE, 0, rows * n * 8)
        blocks.append(raw.view("<f8").reshape(rows, n))
    return np.vstack(blocks)


@pytest.mark.parametrize("n_nodes,n", [(1, 4), (2, 8), (4, 8), (4, 16)])
def test_transpose_matches_numpy(n_nodes, n):
    cluster = Cluster(n_nodes=n_nodes, hardware=fast_hw())
    matrix = setup_matrix(cluster, n)
    reports = cluster.run(run_transpose, n)
    np.testing.assert_allclose(read_result(cluster, n), matrix.T)
    assert all(r.tiles_processed == n_nodes for r in reports)


def test_transpose_requires_divisible_side():
    cluster = Cluster(n_nodes=4, hardware=fast_hw())
    setup_matrix(cluster, 8)
    with pytest.raises(Exception) as exc_info:
        cluster.run(run_transpose, 10)
    assert isinstance(exc_info.value.original, SortError)


def test_transpose_communication_is_balanced():
    cluster = Cluster(n_nodes=4, hardware=fast_hw())
    setup_matrix(cluster, 16)
    cluster.run(run_transpose, 16)
    sent = cluster.network.bytes_sent
    assert max(sent) == min(sent)  # perfectly balanced pairwise swaps


def test_transpose_twice_is_identity():
    cluster = Cluster(n_nodes=2, hardware=fast_hw())
    matrix = setup_matrix(cluster, 8)

    def main(node, comm):
        run_transpose(node, comm, 8)
        # feed the output back in as the next input (untimed copy)
        raw = node.disk.storage.read(OUTPUT_FILE, 0,
                                     node.disk.size(OUTPUT_FILE))
        node.disk.storage.write(MATRIX_FILE, 0, raw)
        comm.barrier()
        run_transpose(node, comm, 8)

    cluster.run(main)
    np.testing.assert_allclose(read_result(cluster, 8), matrix)


@settings(max_examples=10, deadline=None)
@given(st.sampled_from([(1, 3), (2, 4), (3, 9), (4, 12)]),
       st.integers(min_value=0, max_value=50))
def test_property_transpose(shape, seed):
    n_nodes, n = shape
    cluster = Cluster(n_nodes=n_nodes, hardware=fast_hw())
    matrix = setup_matrix(cluster, n, seed=seed)
    cluster.run(run_transpose, n)
    np.testing.assert_allclose(read_result(cluster, n), matrix.T)
