"""Tests for the distribution-based out-of-core group-by application."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.groupby import (
    GroupByConfig,
    KeyValueSchema,
    combine_sorted,
    run_groupby,
)
from repro.cluster import Cluster, HardwareModel
from repro.pdm.blockfile import RecordFile

SCHEMA = KeyValueSchema()


def fast_hw():
    return HardwareModel(net_bandwidth=1e9, net_latency=1e-6,
                         disk_bandwidth=1e9, disk_seek=1e-5)


def setup_kv_input(cluster, per_node, key_space, seed=0):
    """Random (key, value) records per node; return the expected sums."""
    rng = np.random.default_rng(seed)
    expected: Counter = Counter()
    for node in cluster.nodes:
        keys = rng.integers(0, key_space, size=per_node, dtype=np.uint64)
        values = rng.integers(0, 1000, size=per_node, dtype=np.uint64)
        for k, v in zip(keys.tolist(), values.tolist()):
            expected[k] += v
        RecordFile(node.disk, "kv-input", SCHEMA).poke(
            0, SCHEMA.make(keys, values))
    return expected


def read_groups(cluster):
    """All (key, total) pairs across nodes."""
    out = {}
    for node in cluster.nodes:
        records = RecordFile(node.disk, "kv-groups", SCHEMA).read_all()
        for k, v in zip(records["key"].tolist(),
                        records["value"].tolist()):
            assert k not in out, f"key {k} emitted by two nodes"
            out[k] = v
    return out


def run_case(n_nodes=4, per_node=2000, key_space=100, seed=0,
             config=None):
    cluster = Cluster(n_nodes=n_nodes, hardware=fast_hw())
    expected = setup_kv_input(cluster, per_node, key_space, seed)
    config = config or GroupByConfig(block_records=256,
                                     vertical_block_records=64,
                                     out_block_records=128)
    reports = cluster.run(run_groupby, config)
    groups = read_groups(cluster)
    assert groups == dict(expected)
    return cluster, reports


def test_groupby_few_hot_keys():
    """100 distinct keys across 8000 records: massive combining."""
    _, reports = run_case(key_space=100)
    assert sum(r.distinct_keys for r in reports) == 100 or \
        sum(r.distinct_keys for r in reports) <= 100


def test_groupby_mostly_unique_keys():
    run_case(key_space=2**62, per_node=1000)


def test_groupby_single_key():
    cluster, reports = run_case(key_space=1, per_node=500)
    assert sum(r.distinct_keys for r in reports) == 1


def test_groupby_single_node():
    run_case(n_nodes=1, per_node=3000, key_space=50)


def test_groupby_local_outputs_are_sorted():
    cluster, _ = run_case(key_space=1000)
    for node in cluster.nodes:
        records = RecordFile(node.disk, "kv-groups", SCHEMA).read_all()
        keys = records["key"]
        assert (keys[:-1] < keys[1:]).all()  # strictly increasing


def test_groupby_report_counts():
    _, reports = run_case(n_nodes=2, per_node=1500, key_space=30)
    assert sum(r.input_records for r in reports) == 3000
    for rep in reports:
        assert rep.pass1_time > 0 and rep.pass2_time > 0


def test_combine_sorted_basics():
    records = SCHEMA.make(np.array([1, 1, 2, 5, 5, 5], dtype=np.uint64),
                          np.array([10, 20, 3, 1, 1, 1], dtype=np.uint64))
    out = combine_sorted(records)
    assert list(out["key"]) == [1, 2, 5]
    assert list(out["value"]) == [30, 3, 3]
    assert len(combine_sorted(SCHEMA.empty(0))) == 0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 100)),
                min_size=0, max_size=100))
def test_property_combine_sorted_equals_counter(pairs):
    pairs.sort()
    keys = np.array([k for k, _ in pairs], dtype=np.uint64)
    values = np.array([v for _, v in pairs], dtype=np.uint64)
    out = combine_sorted(SCHEMA.make(keys, values))
    expected = Counter()
    for k, v in pairs:
        expected[k] += v
    assert {int(k): int(v) for k, v in zip(out["key"], out["value"])} \
        == dict(expected)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=1, max_value=4),
       st.sampled_from([1, 7, 100, 2**40]),
       st.integers(min_value=0, max_value=50))
def test_property_groupby_end_to_end(n_nodes, key_space, seed):
    run_case(n_nodes=n_nodes, per_node=400, key_space=key_space,
             seed=seed,
             config=GroupByConfig(block_records=64,
                                  vertical_block_records=32,
                                  out_block_records=48))
