"""Unit + property tests for key distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SortError
from repro.workloads.distributions import (
    ADVERSARIAL_DISTRIBUTIONS,
    DISTRIBUTIONS,
    PAPER_DISTRIBUTIONS,
    generate_keys,
    _floats_to_ordered_u64,
)


def rng():
    return np.random.default_rng(42)


def test_paper_distributions_are_registered():
    assert PAPER_DISTRIBUTIONS == ("uniform", "all_equal", "std_normal",
                                   "poisson")
    for name in PAPER_DISTRIBUTIONS + ADVERSARIAL_DISTRIBUTIONS:
        assert name in DISTRIBUTIONS


@pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
def test_every_distribution_yields_u64_of_right_length(name):
    keys = generate_keys(name, 1000, rng())
    assert keys.dtype == np.uint64
    assert len(keys) == 1000


def test_all_equal_really_is():
    keys = generate_keys("all_equal", 500, rng())
    assert len(np.unique(keys)) == 1


def test_uniform_spreads_over_key_space():
    keys = generate_keys("uniform", 10000, rng())
    # buckets by top 2 bits: all four quartiles populated
    counts = np.bincount((keys >> np.uint64(62)).astype(int), minlength=4)
    assert (counts > 1000).all()


def test_poisson_has_small_support_and_ties():
    keys = generate_keys("poisson", 10000, rng())
    assert keys.max() < 20
    assert len(np.unique(keys)) < 20


def test_std_normal_order_preserved():
    """Sorting the u64 keys equals sorting the source normals."""
    g = np.random.default_rng(7)
    x = g.standard_normal(5000)
    u = _floats_to_ordered_u64(x)
    np.testing.assert_array_equal(np.argsort(u, kind="stable"),
                                  np.argsort(x, kind="stable"))


def test_reverse_and_sorted():
    assert (np.diff(generate_keys("reverse_sorted", 100, rng())
                    .astype(np.int64)) < 0).all()
    assert (np.diff(generate_keys("sorted", 100, rng())
                    .astype(np.int64)) > 0).all()


def test_single_hot_value_is_skewed():
    keys = generate_keys("single_hot_value", 10000, rng())
    values, counts = np.unique(keys, return_counts=True)
    assert counts.max() > 8500


def test_narrow_range_is_narrow():
    keys = generate_keys("narrow_range", 1000, rng())
    assert int(keys.max()) - int(keys.min()) < (1 << 20)


def test_unknown_distribution_rejected():
    with pytest.raises(SortError):
        generate_keys("nope", 10, rng())


def test_negative_count_rejected():
    with pytest.raises(SortError):
        generate_keys("uniform", -1, rng())


def test_determinism_same_seed_same_keys():
    a = generate_keys("std_normal", 1000, np.random.default_rng(3))
    b = generate_keys("std_normal", 1000, np.random.default_rng(3))
    np.testing.assert_array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=64), min_size=2, max_size=100))
def test_property_float_map_is_order_preserving(values):
    x = np.array(values, dtype=np.float64)
    u = _floats_to_ordered_u64(x)
    for i in range(len(x) - 1):
        if x[i] < x[i + 1]:
            assert u[i] < u[i + 1]
        elif x[i] > x[i + 1]:
            assert u[i] > u[i + 1]
        else:
            assert u[i] == u[i + 1]
