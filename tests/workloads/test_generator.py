"""Unit tests for dataset generation on the cluster."""

import numpy as np
import pytest

from repro.cluster import Cluster, HardwareModel
from repro.errors import SortError
from repro.pdm.blockfile import RecordFile
from repro.pdm.records import RecordSchema
from repro.workloads.generator import INPUT_FILE, generate_input


def make_cluster(n=4):
    return Cluster(n_nodes=n, hardware=HardwareModel())


def test_every_node_gets_its_share():
    cluster = make_cluster(4)
    schema = RecordSchema.paper_16()
    manifest = generate_input(cluster, schema, n_per_node=100,
                              distribution="uniform", seed=1)
    for node in cluster.nodes:
        rf = RecordFile(node.disk, INPUT_FILE, schema)
        assert rf.n_records == 100
    assert manifest.total_records == 400
    assert manifest.total_bytes == 6400


def test_manifest_sorted_keys_match_data():
    cluster = make_cluster(3)
    schema = RecordSchema.paper_16()
    manifest = generate_input(cluster, schema, n_per_node=50,
                              distribution="std_normal", seed=5)
    all_keys = np.concatenate([
        RecordFile(node.disk, INPUT_FILE, schema).read_all()["key"]
        for node in cluster.nodes])
    np.testing.assert_array_equal(np.sort(all_keys), manifest.sorted_keys)


def test_generation_is_untimed_and_free():
    cluster = make_cluster(2)
    generate_input(cluster, RecordSchema(8), n_per_node=10,
                   distribution="uniform")
    assert cluster.kernel.now() == 0.0
    assert cluster.total_bytes_io() == 0


def test_regeneration_replaces_old_input():
    cluster = make_cluster(2)
    schema = RecordSchema(8)
    generate_input(cluster, schema, n_per_node=100, distribution="uniform")
    generate_input(cluster, schema, n_per_node=10, distribution="uniform")
    rf = RecordFile(cluster.node(0).disk, INPUT_FILE, schema)
    assert rf.n_records == 10


def test_same_seed_reproducible_across_clusters():
    schema = RecordSchema(8)
    keys = []
    for _ in range(2):
        cluster = make_cluster(2)
        generate_input(cluster, schema, n_per_node=20,
                       distribution="uniform", seed=9)
        keys.append(RecordFile(cluster.node(1).disk, INPUT_FILE,
                               schema).read_all()["key"])
    np.testing.assert_array_equal(keys[0], keys[1])


def test_zero_records_rejected():
    with pytest.raises(SortError):
        generate_input(make_cluster(1), RecordSchema(8), n_per_node=0,
                       distribution="uniform")
